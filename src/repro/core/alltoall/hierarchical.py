"""Hierarchical and multi-leader all-to-all (Algorithm 3 of the paper).

One *leader* per aggregation group gathers the full send buffers of its
group members, the leaders perform an all-to-all among themselves, and each
leader scatters the received data back to its members:

1. ``MPI_Gather`` of every member's send buffer onto the leader
   (blue arrows in the paper's Figure 2/3);
2. repack into destination-group order;
3. ``MPI_Alltoall`` among all leaders, exchanging ``s·ppl²`` bytes per
   leader pair (red arrows);
4. repack into per-member order;
5. ``MPI_Scatter`` back to the members (yellow arrows).

With ``procs_per_leader`` equal to the whole node this is the classic
single-leader hierarchical algorithm; smaller values give the multi-leader
variant, which trades more inter-node messages for cheaper gathers and
scatters.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall import repack
from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.core.alltoall.exchanges import get_inner_exchange
from repro.core.instrumentation import (
    PHASE_GATHER,
    PHASE_INTER,
    PHASE_PACK,
    PHASE_SCATTER,
    PhaseRecorder,
)
from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import RankContext
from repro.simmpi.split import cross_group_comm, local_group_comm
from repro.utils.partition import validate_group_size

__all__ = ["HierarchicalAlltoall", "hierarchical_alltoall"]


def hierarchical_alltoall(
    ctx: RankContext,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    *,
    procs_per_leader: int | None = None,
    inner: str = "pairwise",
    phases: PhaseRecorder | None = None,
):
    """Run the hierarchical / multi-leader exchange for one rank (generator)."""
    pmap = ctx.pmap
    params = pmap.params
    nprocs = pmap.nprocs
    block = check_alltoall_buffers(sendbuf, recvbuf, nprocs)
    ppl = pmap.ppn if procs_per_leader is None else procs_per_leader
    validate_group_size(pmap.ppn, ppl)
    exchange = get_inner_exchange(inner)
    recorder = phases if phases is not None else PhaseRecorder(ctx)

    local = local_group_comm(ctx, ppl)
    ngroups = nprocs // ppl
    is_leader = local.rank == 0

    # Phase 1: gather every member's full send buffer onto the leader.
    with recorder.phase(PHASE_GATHER):
        gathered = np.empty(ppl * nprocs * block, dtype=sendbuf.dtype) if is_leader else None
        yield from local.gather(sendbuf, gathered, root=0)

    scatter_source = None
    if is_leader:
        leaders = cross_group_comm(ctx, ppl)

        # Phase 2: repack into destination-group order.
        with recorder.phase(PHASE_PACK):
            leader_send = repack.hierarchical_pack_for_leaders(gathered, ppl, ngroups, block)
            yield repack.pack_delay(params, leader_send.nbytes)

        # Phase 3: all-to-all among the leaders.
        with recorder.phase(PHASE_INTER):
            leader_recv = np.empty_like(leader_send)
            yield from exchange(leaders, leader_send, leader_recv)

        # Phase 4: repack into per-member scatter order.
        with recorder.phase(PHASE_PACK):
            scatter_source = repack.hierarchical_unpack_to_scatter(leader_recv, ppl, ngroups, block)
            yield repack.pack_delay(params, scatter_source.nbytes)

    # Phase 5: scatter each member's result back from the leader.
    with recorder.phase(PHASE_SCATTER):
        yield from local.scatter(scatter_source, recvbuf, root=0)


class HierarchicalAlltoall(AlltoallAlgorithm):
    """Hierarchical (single-leader) or multi-leader all-to-all.

    Parameters
    ----------
    procs_per_leader:
        Size of each leader's group.  ``None`` (default) uses one leader per
        node — the standard hierarchical algorithm.  The paper's multi-leader
        configurations use 4, 8 and 16 processes per leader.
    inner:
        Exchange used for the leader-to-leader all-to-all
        (``"pairwise"``, ``"nonblocking"``, ``"bruck"`` or ``"batched"``).
    """

    name = "hierarchical"

    def __init__(self, procs_per_leader: int | None = None, inner: str = "pairwise") -> None:
        if procs_per_leader is not None and procs_per_leader <= 0:
            raise ConfigurationError(
                f"procs_per_leader must be positive, got {procs_per_leader}"
            )
        self.procs_per_leader = procs_per_leader
        self.inner = inner
        get_inner_exchange(inner)  # fail fast on unknown names

    def validate(self, pmap: ProcessMap) -> None:
        ppl = pmap.ppn if self.procs_per_leader is None else self.procs_per_leader
        validate_group_size(pmap.ppn, ppl)

    def options(self):
        return {"procs_per_leader": self.procs_per_leader, "inner": self.inner}

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from hierarchical_alltoall(
            ctx, sendbuf, recvbuf,
            procs_per_leader=self.procs_per_leader, inner=self.inner,
        )


class MultiLeaderAlltoall(HierarchicalAlltoall):
    """Multi-leader all-to-all: Algorithm 3 with more than one leader per node.

    Identical to :class:`HierarchicalAlltoall` but registered under its own
    name (the paper plots the two as distinct series) and defaulting to the
    paper's best-performing 4 processes per leader.
    """

    name = "multileader"

    def __init__(self, procs_per_leader: int = 4, inner: str = "pairwise") -> None:
        super().__init__(procs_per_leader=procs_per_leader, inner=inner)
