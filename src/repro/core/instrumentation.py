"""Phase timing instrumentation for the all-to-all algorithms.

The paper's Figures 13–16 break the hierarchical and node-aware algorithms
into their internal phases (gather, scatter, inter-node all-to-all,
intra-node all-to-all).  :class:`PhaseRecorder` gives algorithms a tiny API
to attribute simulated time to named phases; the per-rank accumulations are
collected into :class:`repro.simmpi.engine.JobResult.phase_timings` and
reduced (max over ranks) by the benchmark harness.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import AlgorithmError
from repro.simmpi.engine import RankContext

__all__ = ["PhaseRecorder", "PHASE_GATHER", "PHASE_SCATTER", "PHASE_INTER", "PHASE_INTRA", "PHASE_PACK"]

#: Canonical phase names used across algorithms so figures can compare them.
PHASE_GATHER = "gather"
PHASE_SCATTER = "scatter"
PHASE_INTER = "inter-node alltoall"
PHASE_INTRA = "intra-node alltoall"
PHASE_PACK = "pack"


class PhaseRecorder:
    """Accumulates simulated time per named phase for one rank.

    The preferred form is the context manager, which guarantees the open
    phase is cleaned up even when the block raises::

        phases = PhaseRecorder(ctx)
        with phases.phase(PHASE_GATHER):
            yield from comm.gather(...)

    The explicit ``start``/``stop`` pair remains supported for call sites
    whose phase boundaries do not nest lexically.  Phases may be entered
    repeatedly; durations accumulate.  Nested phases are rejected because
    the figures assume disjoint phases.

    When the engine carries an event sink (:mod:`repro.obs`), every closed
    phase is also emitted as a ``(rank, name, start, stop)`` span — the
    phase slices on the rank tracks of the exported Perfetto timeline.
    """

    def __init__(self, ctx: RankContext) -> None:
        self._ctx = ctx
        self._open: str | None = None
        self._start_time = 0.0

    def start(self, phase: str) -> None:
        if self._open is not None:
            raise AlgorithmError(
                f"cannot start phase {phase!r}: phase {self._open!r} is still open"
            )
        self._open = phase
        self._start_time = self._ctx.now

    def stop(self, phase: str) -> None:
        if self._open != phase:
            raise AlgorithmError(
                f"cannot stop phase {phase!r}: open phase is {self._open!r}"
            )
        ctx = self._ctx
        stop_time = ctx.now
        ctx.add_timing(phase, stop_time - self._start_time)
        sink = ctx._engine.sink
        if sink is not None:
            sink.phase(ctx.rank, phase, self._start_time, stop_time)
        self._open = None

    @contextmanager
    def phase(self, name: str):
        """Record ``name`` around a block; never leaves the phase dangling.

        On a clean exit the phase is stopped (and its duration recorded);
        if the block raises — including ``GeneratorExit`` when a rank
        program is torn down mid-phase — the open phase is discarded so the
        recorder stays usable and no partial duration is attributed.
        """
        self.start(name)
        try:
            yield self
        except BaseException:
            self._open = None
            raise
        self.stop(name)

    @property
    def open_phase(self) -> str | None:
        return self._open
