"""Phase timing instrumentation for the all-to-all algorithms.

The paper's Figures 13–16 break the hierarchical and node-aware algorithms
into their internal phases (gather, scatter, inter-node all-to-all,
intra-node all-to-all).  :class:`PhaseRecorder` gives algorithms a tiny API
to attribute simulated time to named phases; the per-rank accumulations are
collected into :class:`repro.simmpi.engine.JobResult.phase_timings` and
reduced (max over ranks) by the benchmark harness.
"""

from __future__ import annotations

from repro.errors import AlgorithmError
from repro.simmpi.engine import RankContext

__all__ = ["PhaseRecorder", "PHASE_GATHER", "PHASE_SCATTER", "PHASE_INTER", "PHASE_INTRA", "PHASE_PACK"]

#: Canonical phase names used across algorithms so figures can compare them.
PHASE_GATHER = "gather"
PHASE_SCATTER = "scatter"
PHASE_INTER = "inter-node alltoall"
PHASE_INTRA = "intra-node alltoall"
PHASE_PACK = "pack"


class PhaseRecorder:
    """Accumulates simulated time per named phase for one rank.

    Usage inside an algorithm generator::

        phases = PhaseRecorder(ctx)
        phases.start(PHASE_GATHER)
        yield from comm.gather(...)
        phases.stop(PHASE_GATHER)

    Phases may be entered repeatedly; durations accumulate.  Nested phases
    are rejected because the figures assume disjoint phases.
    """

    def __init__(self, ctx: RankContext) -> None:
        self._ctx = ctx
        self._open: str | None = None
        self._start_time = 0.0

    def start(self, phase: str) -> None:
        if self._open is not None:
            raise AlgorithmError(
                f"cannot start phase {phase!r}: phase {self._open!r} is still open"
            )
        self._open = phase
        self._start_time = self._ctx.now

    def stop(self, phase: str) -> None:
        if self._open != phase:
            raise AlgorithmError(
                f"cannot stop phase {phase!r}: open phase is {self._open!r}"
            )
        self._ctx.add_timing(phase, self._ctx.now - self._start_time)
        self._open = None

    @property
    def open_phase(self) -> str | None:
        return self._open
