"""Reference all-to-all results and result validation.

Every algorithm in :mod:`repro.core.alltoall` must produce exactly the same
receive buffers as the defining transposition: block ``s`` of rank ``r``'s
receive buffer equals block ``r`` of rank ``s``'s send buffer.  The helpers
here compute the expected buffers for the deterministic test pattern of
:func:`repro.utils.buffers.make_alltoall_sendbuf` and check whole-job
results, so the runner can validate every simulated exchange it performs.

The ``workload`` variants generalise all of this to non-uniform exchanges
driven by a per-pair count matrix (``alltoallv`` semantics): block sizes
vary per (source, destination) pair, but the deterministic tagging scheme —
``(source * nprocs + dest) * 1000`` plus an arithmetic ramp — is identical,
so uniform and non-uniform validation are directly comparable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BufferSizeError
from repro.utils.buffers import check_counts_matrix, make_alltoall_sendbuf

__all__ = [
    "expected_alltoall_result",
    "validate_alltoall_results",
    "alltoall_reference",
    "expected_folded_alltoall_result",
    "validate_folded_alltoall_results",
    "make_workload_sendbuf",
    "expected_workload_result",
    "validate_workload_results",
    "expected_folded_workload_result",
    "validate_folded_workload_results",
    "alltoallv_reference",
]


def expected_alltoall_result(rank: int, nprocs: int, block_items: int, dtype=np.int64) -> np.ndarray:
    """Expected receive buffer of ``rank`` when every rank sent the test pattern.

    Equivalent to (but much faster than) building every rank's send buffer
    with :func:`make_alltoall_sendbuf` and extracting block ``rank`` of each.
    """
    if block_items < 0:
        raise BufferSizeError("block_items must be non-negative")
    out = np.empty(nprocs * block_items, dtype=dtype)
    view = out.reshape(nprocs, block_items) if block_items else out.reshape(nprocs, 0)
    ramp = np.arange(block_items, dtype=np.int64)
    for src in range(nprocs):
        base = src * nprocs + rank
        if block_items:
            # Same int64-then-wrap convention as make_alltoall_sendbuf.
            view[src, :] = (base * 1000 + ramp).astype(dtype)
    return out


def alltoall_reference(sendbufs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Reference all-to-all on in-memory buffers (the defining transposition).

    ``sendbufs[r]`` is rank ``r``'s send buffer with ``len(sendbufs)`` equal
    blocks.  Returns the list of receive buffers.  Used by property-based
    tests to compare simulated algorithms against an independent oracle.
    """
    nprocs = len(sendbufs)
    if nprocs == 0:
        raise BufferSizeError("need at least one rank")
    size = sendbufs[0].size
    if size % nprocs != 0:
        raise BufferSizeError(f"buffer of {size} items does not divide into {nprocs} blocks")
    block = size // nprocs
    stacked = np.stack([np.asarray(b).reshape(nprocs, block) for b in sendbufs])
    # stacked[s, d] is the block source s sends to destination d; the result
    # for destination d is stacked[:, d] flattened in source order.
    return [np.ascontiguousarray(stacked[:, d]).reshape(-1) for d in range(nprocs)]


def expected_folded_alltoall_result(
    rank: int, nprocs: int, ppn: int, block_items: int, dtype=np.int64
) -> np.ndarray:
    """Expected receive buffer of representative ``rank`` in a *folded* job.

    A symmetry-folded run (:mod:`repro.machine.folding`) delivers, in place
    of the message a folded-out rank ``s`` would have sent, the mirror of a
    representative send — the same bytes the representative with local index
    ``s % ppn`` staged for the rotated destination.  Composing the rotation
    across however many hops an algorithm routes the data through, block
    ``s`` of representative ``rank`` ends up holding the sender pattern of
    source ``s % ppn`` for destination ``(rank - (s // ppn) * ppn) % nprocs``
    — the full run's content relabelled by the node rotation, exactly (this
    holds for every node-rotation-equivariant algorithm; the fold gate
    checks it across the registry).  Validating against this reference is
    therefore exact for folded jobs, complementing the unfolded content
    check of :func:`expected_alltoall_result`.
    """
    if block_items < 0:
        raise BufferSizeError("block_items must be non-negative")
    out = np.empty(nprocs * block_items, dtype=dtype)
    view = out.reshape(nprocs, block_items) if block_items else out.reshape(nprocs, 0)
    ramp = np.arange(block_items, dtype=np.int64)
    for src in range(nprocs):
        shifted_dest = (rank - (src // ppn) * ppn) % nprocs
        base = (src % ppn) * nprocs + shifted_dest
        if block_items:
            # Same int64-then-wrap convention as make_alltoall_sendbuf.
            view[src, :] = (base * 1000 + ramp).astype(dtype)
    return out


def validate_folded_alltoall_results(
    results: Sequence[np.ndarray],
    nprocs: int,
    ppn: int,
    block_items: int,
) -> bool:
    """Check a folded job's representative receive buffers (one per local rank).

    ``results`` holds the ``ppn`` representatives' buffers; each is compared
    against :func:`expected_folded_alltoall_result`.
    """
    if len(results) != ppn:
        raise BufferSizeError(
            f"folded job should produce {ppn} representative buffers, got {len(results)}"
        )
    for rank, buf in enumerate(results):
        if buf is None:
            return False
        arr = np.asarray(buf)
        if arr.size != nprocs * block_items:
            raise BufferSizeError(
                f"representative {rank} produced {arr.size} items, "
                f"expected {nprocs * block_items}"
            )
        expected = expected_folded_alltoall_result(
            rank, nprocs, ppn, block_items, dtype=arr.dtype
        )
        if not np.array_equal(arr.reshape(-1), expected):
            return False
    return True


def _workload_pattern(src: int, dest: int, nprocs: int, items: int, dtype) -> np.ndarray:
    # Same int64-then-wrap convention as make_alltoall_sendbuf.
    base = src * nprocs + dest
    return (base * 1000 + np.arange(items, dtype=np.int64)).astype(dtype)


def make_workload_sendbuf(rank: int, counts, dtype=np.int64) -> np.ndarray:
    """Build rank ``rank``'s deterministic packed send buffer for a count matrix.

    ``counts[s, d]`` is the number of items ``s`` sends to ``d``; the buffer
    concatenates the variable-size blocks for destinations ``0..p-1`` with
    the tagging scheme of :func:`repro.utils.buffers.make_alltoall_sendbuf`.
    """
    arr = check_counts_matrix(counts)
    nprocs = arr.shape[0]
    row = arr[rank]
    buf = np.empty(int(row.sum()), dtype=dtype)
    pos = 0
    for dest in range(nprocs):
        items = int(row[dest])
        buf[pos: pos + items] = _workload_pattern(rank, dest, nprocs, items, dtype)
        pos += items
    return buf


def expected_workload_result(rank: int, counts, dtype=np.int64) -> np.ndarray:
    """Expected packed receive buffer of ``rank`` for the workload test pattern."""
    arr = check_counts_matrix(counts)
    nprocs = arr.shape[0]
    col = arr[:, rank]
    out = np.empty(int(col.sum()), dtype=dtype)
    pos = 0
    for src in range(nprocs):
        items = int(col[src])
        out[pos: pos + items] = _workload_pattern(src, rank, nprocs, items, dtype)
        pos += items
    return out


def expected_folded_workload_result(rank: int, counts, ppn: int, dtype=np.int64) -> np.ndarray:
    """Expected packed receive buffer of representative ``rank`` in a folded job.

    The workload analogue of :func:`expected_folded_alltoall_result`: block
    ``s`` carries ``counts[s, rank]`` items tagged with source ``s % ppn``
    and the node-rotated destination.  Only meaningful for count matrices
    that passed the symmetry analyzer (rotation-invariant), which is the
    precondition for folding a workload at all.
    """
    arr = check_counts_matrix(counts)
    nprocs = arr.shape[0]
    col = arr[:, rank]
    out = np.empty(int(col.sum()), dtype=dtype)
    pos = 0
    for src in range(nprocs):
        items = int(col[src])
        shifted_dest = (rank - (src // ppn) * ppn) % nprocs
        out[pos: pos + items] = _workload_pattern(src % ppn, shifted_dest, nprocs, items, dtype)
        pos += items
    return out


def validate_folded_workload_results(results: Sequence[np.ndarray], counts, ppn: int) -> bool:
    """Check a folded workload job's representative packed receive buffers."""
    arr = check_counts_matrix(counts)
    if len(results) != ppn:
        raise BufferSizeError(
            f"folded job should produce {ppn} representative buffers, got {len(results)}"
        )
    for rank, buf in enumerate(results):
        if buf is None:
            return False
        got = np.asarray(buf)
        expected_items = int(arr[:, rank].sum())
        if got.size != expected_items:
            raise BufferSizeError(
                f"representative {rank} produced {got.size} items, expected {expected_items}"
            )
        expected = expected_folded_workload_result(rank, arr, ppn, dtype=got.dtype)
        if not np.array_equal(got.reshape(-1), expected):
            return False
    return True


def alltoallv_reference(sendbufs: Sequence[np.ndarray], counts) -> list[np.ndarray]:
    """Reference alltoallv on in-memory packed buffers (the defining transposition).

    ``sendbufs[s]`` holds rank ``s``'s packed send buffer with block sizes
    ``counts[s, :]``; the returned receive buffers concatenate, for each
    destination ``d``, the blocks ``counts[s, d]`` in source order.  Used by
    property-based tests as an independent oracle for the v-algorithms.
    """
    arr = check_counts_matrix(counts)
    nprocs = arr.shape[0]
    if len(sendbufs) != nprocs:
        raise BufferSizeError(f"expected {nprocs} send buffers, got {len(sendbufs)}")
    displs = np.zeros((nprocs, nprocs), dtype=np.int64)
    np.cumsum(arr[:, :-1], axis=1, out=displs[:, 1:])
    results = []
    for dest in range(nprocs):
        chunks = []
        for src in range(nprocs):
            buf = np.asarray(sendbufs[src])
            if buf.size != int(arr[src].sum()):
                raise BufferSizeError(
                    f"send buffer of rank {src} has {buf.size} items but its counts "
                    f"sum to {int(arr[src].sum())}"
                )
            start = displs[src, dest]
            chunks.append(buf[start: start + arr[src, dest]])
        results.append(np.concatenate(chunks) if chunks else np.empty(0))
    return results


def validate_workload_results(results: Sequence[np.ndarray], counts) -> bool:
    """Check a whole job's packed receive buffers against the workload test pattern.

    Returns ``True`` when every rank's buffer matches; raises
    :class:`BufferSizeError` on size mismatches (which would otherwise
    masquerade as value mismatches).
    """
    arr = check_counts_matrix(counts)
    nprocs = arr.shape[0]
    if len(results) != nprocs:
        raise BufferSizeError(f"expected {nprocs} result buffers, got {len(results)}")
    for rank, buf in enumerate(results):
        if buf is None:
            return False
        got = np.asarray(buf)
        expected_items = int(arr[:, rank].sum())
        if got.size != expected_items:
            raise BufferSizeError(
                f"rank {rank} produced {got.size} items, expected {expected_items}"
            )
        expected = expected_workload_result(rank, arr, dtype=got.dtype)
        if not np.array_equal(got.reshape(-1), expected):
            return False
    return True


def validate_alltoall_results(
    results: Sequence[np.ndarray],
    nprocs: int,
    block_items: int,
) -> bool:
    """Check a whole job's receive buffers against the expected test pattern.

    Returns ``True`` when every rank's buffer matches; raises
    :class:`BufferSizeError` when a buffer has the wrong size (which would
    otherwise masquerade as a value mismatch).
    """
    if len(results) != nprocs:
        raise BufferSizeError(f"expected {nprocs} result buffers, got {len(results)}")
    for rank, buf in enumerate(results):
        if buf is None:
            return False
        arr = np.asarray(buf)
        if arr.size != nprocs * block_items:
            raise BufferSizeError(
                f"rank {rank} produced {arr.size} items, expected {nprocs * block_items}"
            )
        expected = expected_alltoall_result(rank, nprocs, block_items, dtype=arr.dtype)
        if not np.array_equal(arr.reshape(-1), expected):
            return False
    return True
