"""Reference all-to-all results and result validation.

Every algorithm in :mod:`repro.core.alltoall` must produce exactly the same
receive buffers as the defining transposition: block ``s`` of rank ``r``'s
receive buffer equals block ``r`` of rank ``s``'s send buffer.  The helpers
here compute the expected buffers for the deterministic test pattern of
:func:`repro.utils.buffers.make_alltoall_sendbuf` and check whole-job
results, so the runner can validate every simulated exchange it performs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BufferSizeError
from repro.utils.buffers import make_alltoall_sendbuf

__all__ = ["expected_alltoall_result", "validate_alltoall_results", "alltoall_reference"]


def expected_alltoall_result(rank: int, nprocs: int, block_items: int, dtype=np.int64) -> np.ndarray:
    """Expected receive buffer of ``rank`` when every rank sent the test pattern.

    Equivalent to (but much faster than) building every rank's send buffer
    with :func:`make_alltoall_sendbuf` and extracting block ``rank`` of each.
    """
    if block_items < 0:
        raise BufferSizeError("block_items must be non-negative")
    out = np.empty(nprocs * block_items, dtype=dtype)
    view = out.reshape(nprocs, block_items) if block_items else out.reshape(nprocs, 0)
    ramp = np.arange(block_items, dtype=np.int64)
    for src in range(nprocs):
        base = src * nprocs + rank
        if block_items:
            # Same int64-then-wrap convention as make_alltoall_sendbuf.
            view[src, :] = (base * 1000 + ramp).astype(dtype)
    return out


def alltoall_reference(sendbufs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Reference all-to-all on in-memory buffers (the defining transposition).

    ``sendbufs[r]`` is rank ``r``'s send buffer with ``len(sendbufs)`` equal
    blocks.  Returns the list of receive buffers.  Used by property-based
    tests to compare simulated algorithms against an independent oracle.
    """
    nprocs = len(sendbufs)
    if nprocs == 0:
        raise BufferSizeError("need at least one rank")
    size = sendbufs[0].size
    if size % nprocs != 0:
        raise BufferSizeError(f"buffer of {size} items does not divide into {nprocs} blocks")
    block = size // nprocs
    stacked = np.stack([np.asarray(b).reshape(nprocs, block) for b in sendbufs])
    # stacked[s, d] is the block source s sends to destination d; the result
    # for destination d is stacked[:, d] flattened in source order.
    return [np.ascontiguousarray(stacked[:, d]).reshape(-1) for d in range(nprocs)]


def validate_alltoall_results(
    results: Sequence[np.ndarray],
    nprocs: int,
    block_items: int,
) -> bool:
    """Check a whole job's receive buffers against the expected test pattern.

    Returns ``True`` when every rank's buffer matches; raises
    :class:`BufferSizeError` when a buffer has the wrong size (which would
    otherwise masquerade as a value mismatch).
    """
    if len(results) != nprocs:
        raise BufferSizeError(f"expected {nprocs} result buffers, got {len(results)}")
    for rank, buf in enumerate(results):
        if buf is None:
            return False
        arr = np.asarray(buf)
        if arr.size != nprocs * block_items:
            raise BufferSizeError(
                f"rank {rank} produced {arr.size} items, expected {nprocs * block_items}"
            )
        expected = expected_alltoall_result(rank, nprocs, block_items, dtype=arr.dtype)
        if not np.array_equal(arr.reshape(-1), expected):
            return False
    return True
