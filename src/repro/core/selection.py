"""Dynamic algorithm selection (the paper's Section 5 future-work item).

The paper closes by proposing to "explore how the optimal algorithm can be
dynamically selected for a given computer, system MPI, process count, and
data size".  This module implements that selection in two flavours:

* :class:`AlgorithmSelector` — model-driven: evaluates the analytic cost
  model (:mod:`repro.model`) for a set of candidate configurations and picks
  the cheapest one for each (machine, nodes, ppn, message size) point;
* :class:`SelectionTable` — measurement-driven: built from a sweep of
  simulated (or, in principle, measured) timings, it answers look-ups with
  nearest-size matching, the way an MPI library's tuning file would.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.runtime import PointSpec, SweepExecutor, execute

__all__ = [
    "CandidateConfig",
    "AlgorithmSelector",
    "SelectionTable",
    "build_selection_table",
    "PhaseChoice",
    "PhasedSelection",
    "default_v_candidates",
    "select_phased",
]


@dataclass(frozen=True)
class CandidateConfig:
    """One algorithm configuration considered by the selector."""

    algorithm: str
    options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, algorithm: str, **options) -> "CandidateConfig":
        return cls(algorithm=algorithm, options=tuple(sorted(options.items())))

    def as_kwargs(self) -> dict:
        return dict(self.options)

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        return f"{self.algorithm}({opts})" if opts else self.algorithm


def default_candidates(ppn: int) -> list[CandidateConfig]:
    """The candidate set used by the paper's evaluation (group sizes 4/8/16 plus limits)."""
    candidates = [
        CandidateConfig.make("system-mpi"),
        CandidateConfig.make("hierarchical"),
        CandidateConfig.make("node-aware"),
    ]
    for group in (4, 8, 16):
        if ppn % group == 0 and group <= ppn:
            candidates.append(CandidateConfig.make("multileader", procs_per_leader=group))
            candidates.append(CandidateConfig.make("locality-aware", procs_per_group=group))
            candidates.append(CandidateConfig.make("multileader-node-aware", procs_per_leader=group))
    return candidates


class AlgorithmSelector:
    """Pick the cheapest algorithm configuration using the analytic cost model.

    With an attached :class:`~repro.runtime.SweepExecutor`, the candidate
    evaluations of :meth:`select` (and every size of :meth:`selection_map`)
    fan out over the executor's worker pool and result store instead of
    being priced one at a time.
    """

    def __init__(self, cluster: Cluster, ppn: int, candidates: Sequence[CandidateConfig] | None = None,
                 *, executor: SweepExecutor | None = None) -> None:
        self.cluster = cluster
        self.ppn = ppn
        self.candidates = list(candidates) if candidates is not None else default_candidates(ppn)
        if not self.candidates:
            raise ConfigurationError("the selector needs at least one candidate configuration")
        self.executor = executor

    def _spec(self, candidate: CandidateConfig, num_nodes: int, msg_bytes: int) -> PointSpec:
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        return PointSpec.for_alltoall(
            self.cluster.with_nodes(num_nodes), self.ppn, num_nodes,
            candidate.algorithm, msg_bytes, engine="model", **candidate.as_kwargs(),
        )

    def predict(self, candidate: CandidateConfig, num_nodes: int, msg_bytes: int) -> float:
        """Predicted execution time of one candidate (seconds).

        Shares the spec pricing path of :meth:`select`, so the two can never
        diverge.
        """
        from repro.runtime import run_point  # local import to avoid a cycle

        return run_point(self._spec(candidate, num_nodes, msg_bytes)).seconds

    def select(self, num_nodes: int, msg_bytes: int) -> tuple[CandidateConfig, float]:
        """Return the cheapest candidate and its predicted time (first wins ties)."""
        specs = [self._spec(candidate, num_nodes, msg_bytes) for candidate in self.candidates]
        best: tuple[CandidateConfig, float] | None = None
        for candidate, point in zip(self.candidates, execute(specs, self.executor)):
            if best is None or point.seconds < best[1]:
                best = (candidate, point.seconds)
        assert best is not None
        return best

    def selection_map(self, num_nodes: int, msg_sizes: Iterable[int]) -> dict[int, str]:
        """Best candidate description per message size (a tuning-table view)."""
        return {size: self.select(num_nodes, size)[0].describe() for size in msg_sizes}


@dataclass
class SelectionTable:
    """Measurement-driven selection table.

    Entries map ``(num_nodes, msg_bytes)`` to ``(description, seconds)``;
    look-ups for unmeasured sizes use the nearest measured size at the same
    node count (logarithmic distance, matching how MPI tuning files bucket
    message sizes).
    """

    entries: dict[tuple[int, int], tuple[str, float]] = field(default_factory=dict)

    def record(self, num_nodes: int, msg_bytes: int, description: str, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("recorded times must be non-negative")
        key = (num_nodes, msg_bytes)
        current = self.entries.get(key)
        if current is None or seconds < current[1]:
            self.entries[key] = (description, seconds)

    def sizes_for(self, num_nodes: int) -> list[int]:
        return sorted(size for nodes, size in self.entries if nodes == num_nodes)

    def best(self, num_nodes: int, msg_bytes: int) -> str:
        """Best known algorithm description for the given point."""
        if (num_nodes, msg_bytes) in self.entries:
            return self.entries[(num_nodes, msg_bytes)][0]
        sizes = self.sizes_for(num_nodes)
        if not sizes:
            raise ConfigurationError(f"no measurements recorded for {num_nodes} nodes")
        idx = bisect_left(sizes, msg_bytes)
        neighbours = [s for s in (sizes[max(idx - 1, 0)], sizes[min(idx, len(sizes) - 1)])]
        nearest = min(neighbours, key=lambda s: abs(_log2(s) - _log2(msg_bytes)))
        return self.entries[(num_nodes, nearest)][0]

    def as_rows(self) -> list[tuple[int, int, str, float]]:
        """Table rows (num_nodes, msg_bytes, description, seconds), sorted."""
        return [
            (nodes, size, desc, seconds)
            for (nodes, size), (desc, seconds) in sorted(self.entries.items())
        ]


def build_selection_table(
    cluster: Cluster,
    ppn: int,
    *,
    node_counts: Sequence[int],
    msg_sizes: Sequence[int],
    candidates: Sequence[CandidateConfig] | None = None,
    engine: str = "simulate",
    repetitions: int = 1,
    executor: SweepExecutor | None = None,
    engine_jobs: int = 1,
    faults=None,
) -> SelectionTable:
    """Build a measurement-driven :class:`SelectionTable` from a benchmark sweep.

    Every (candidate, node count, message size) point is described by a
    :class:`~repro.runtime.PointSpec` and the whole sweep is dispatched in
    one :func:`~repro.runtime.execute` batch, so an attached executor
    parallelizes it across a process pool and serves repeated builds from
    its result store.  The table records the fastest candidate per
    (node count, size), exactly as an MPI tuning file would.

    ``faults`` (a :class:`repro.faults.FaultSpec`) injects deterministic
    faults into every simulated point, building the tuning table of the
    degraded machine instead of the healthy one.
    """
    from repro.bench.harness import BenchmarkHarness  # local import to avoid a cycle

    chosen = list(candidates) if candidates is not None else default_candidates(ppn)
    if not chosen:
        raise ConfigurationError("the selection sweep needs at least one candidate")
    harness = BenchmarkHarness(cluster, ppn, engine=engine, repetitions=repetitions,
                               executor=executor, engine_jobs=engine_jobs,
                               faults=faults)
    points: list[tuple[int, int, CandidateConfig]] = [
        (nodes, size, candidate)
        for nodes in node_counts
        for size in msg_sizes
        for candidate in chosen
    ]
    specs = [
        harness.point_spec(candidate.algorithm, size, nodes, **candidate.as_kwargs())
        for nodes, size, candidate in points
    ]
    table = SelectionTable()
    for (nodes, size, candidate), timed in zip(points, harness.run_specs(specs)):
        table.record(nodes, size, candidate.describe(), timed.seconds)
    return table


def _log2(value: int) -> float:
    from math import log2

    return log2(value) if value > 0 else 0.0


# ---------------------------------------------------------------------------
# Adaptive per-phase selection for phased workloads
# ---------------------------------------------------------------------------


def default_v_candidates(ppn: int) -> list[CandidateConfig]:
    """The v-capable candidate set for per-phase (alltoallv) selection."""
    candidates = [
        CandidateConfig.make("pairwise"),
        CandidateConfig.make("nonblocking"),
        CandidateConfig.make("node-aware"),
    ]
    if ppn > 1:
        candidates.append(CandidateConfig.make("node-aware", inner="nonblocking"))
    return candidates


@dataclass(frozen=True)
class PhaseChoice:
    """Adaptive selection's pick for one phase."""

    #: Phase name from the workload.
    phase: str
    #: The winning candidate for this phase.
    candidate: CandidateConfig
    #: Its per-phase cost (seconds, repeats included).
    seconds: float


@dataclass
class PhasedSelection:
    """Static-vs-adaptive selection verdict for one phased workload.

    ``table[phase_index][candidate]`` holds every evaluated per-phase cost
    (seconds, repeats included); ``static`` is the single candidate with
    the cheapest *total* across phases (what a tuning file would pin for
    the whole iteration), ``choices`` re-picks the winner per phase.  By
    construction ``adaptive_seconds <= static_seconds``; the gap is the
    price of phase-blind selection, and it widens under fabric
    interference (see :func:`repro.bench.figures.figure_adaptive`).
    """

    #: Phase names, in workload order.
    phases: list[str]
    #: Candidates that were evaluated on every phase.
    candidates: list[CandidateConfig]
    #: Candidates dropped because some phase rejected their configuration.
    skipped: list[CandidateConfig]
    #: Per-phase evaluated costs: one ``{candidate: seconds}`` dict per phase.
    table: list[dict[CandidateConfig, float]]
    #: Cheapest single candidate by total across phases.
    static: CandidateConfig
    #: Its predicted total (seconds).
    static_seconds: float
    #: Per-phase winners.
    choices: list[PhaseChoice]
    #: Total of the per-phase winners (seconds).
    adaptive_seconds: float

    @property
    def assignment(self) -> list[CandidateConfig]:
        """The adaptive per-phase assignment (one candidate per phase)."""
        return [choice.candidate for choice in self.choices]

    @property
    def is_flip(self) -> bool:
        """Whether adaptive actually deviates from the static pick somewhere."""
        return any(choice.candidate != self.static for choice in self.choices)

    def describe(self) -> str:
        lines = [
            f"static pick: {self.static.describe()} -> {self.static_seconds:.3e} s",
            f"adaptive:    {self.adaptive_seconds:.3e} s",
        ]
        for choice in self.choices:
            lines.append(
                f"  {choice.phase}: {choice.candidate.describe()} "
                f"({choice.seconds:.3e} s)"
            )
        return "\n".join(lines)


def select_phased(
    cluster: Cluster,
    ppn: int,
    workload,
    *,
    candidates: Sequence[CandidateConfig] | None = None,
    engine: str = "simulate",
    repetitions: int = 1,
    executor: SweepExecutor | None = None,
    engine_jobs: int = 1,
    faults=None,
) -> PhasedSelection:
    """Evaluate every candidate on every phase and pick static vs adaptive.

    Each (phase, candidate) pair becomes one ordinary workload
    :class:`~repro.runtime.PointSpec` over the phase's traffic matrix —
    cacheable and executor-parallel exactly like any other benchmark
    point.  Candidates whose configuration is rejected by *any* phase
    (e.g. a group size the placement cannot host) are dropped from the
    comparison and reported in ``skipped``.

    The phase costs are priced in isolation — which is precisely what a
    tuning table can do.  Under fabric interference the realized totals
    shift, and the adaptive assignment's lead over the static pick is what
    the ``adaptive`` figure measures end-to-end.
    """
    from repro.bench.harness import BenchmarkHarness  # local import to avoid a cycle
    from repro.core.alltoall.valgorithms import get_v_algorithm
    from repro.errors import ReproError
    from repro.machine.process_map import ProcessMap

    chosen = list(candidates) if candidates is not None else default_v_candidates(ppn)
    if not chosen:
        raise ConfigurationError("phased selection needs at least one candidate")
    if workload.nprocs % ppn != 0:
        raise ConfigurationError(
            f"workload has {workload.nprocs} ranks, not a multiple of ppn={ppn}"
        )
    num_nodes = workload.nprocs // ppn
    pmap = ProcessMap(cluster, ppn=ppn, num_nodes=num_nodes)

    # Pre-filter: a candidate must be applicable to every phase, or static
    # selection could not run it for the whole iteration.
    applicable: list[CandidateConfig] = []
    skipped: list[CandidateConfig] = []
    for candidate in chosen:
        try:
            algo = get_v_algorithm(candidate.algorithm, **candidate.as_kwargs())
            for phase in workload.phases:
                algo.validate(pmap, phase.matrix.item_counts())
        except ReproError:
            skipped.append(candidate)
            continue
        applicable.append(candidate)
    if not applicable:
        raise ConfigurationError(
            "no candidate is applicable to every phase of the workload; "
            f"skipped: {[c.describe() for c in skipped]}"
        )

    harness = BenchmarkHarness(cluster, ppn, engine=engine, repetitions=repetitions,
                               executor=executor, engine_jobs=engine_jobs,
                               faults=faults)
    pairs = [
        (phase_index, candidate)
        for phase_index in range(workload.num_phases)
        for candidate in applicable
    ]
    specs = [
        harness.workload_spec(
            candidate.algorithm, workload.phases[phase_index].matrix, num_nodes,
            **candidate.as_kwargs(),
        )
        for phase_index, candidate in pairs
    ]
    table: list[dict[CandidateConfig, float]] = [{} for _ in workload.phases]
    for (phase_index, candidate), timed in zip(pairs, harness.run_specs(specs)):
        table[phase_index][candidate] = timed.seconds * workload.phases[phase_index].repeats

    choices: list[PhaseChoice] = []
    for phase, costs in zip(workload.phases, table):
        best = min(applicable, key=lambda c: costs[c])  # first wins ties
        choices.append(PhaseChoice(phase=phase.name, candidate=best,
                                   seconds=costs[best]))
    totals = {
        candidate: sum(costs[candidate] for costs in table)
        for candidate in applicable
    }
    static = min(applicable, key=lambda c: totals[c])
    return PhasedSelection(
        phases=[phase.name for phase in workload.phases],
        candidates=applicable,
        skipped=skipped,
        table=table,
        static=static,
        static_seconds=totals[static],
        choices=choices,
        adaptive_seconds=sum(choice.seconds for choice in choices),
    )
