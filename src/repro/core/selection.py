"""Dynamic algorithm selection (the paper's Section 5 future-work item).

The paper closes by proposing to "explore how the optimal algorithm can be
dynamically selected for a given computer, system MPI, process count, and
data size".  This module implements that selection in two flavours:

* :class:`AlgorithmSelector` — model-driven: evaluates the analytic cost
  model (:mod:`repro.model`) for a set of candidate configurations and picks
  the cheapest one for each (machine, nodes, ppn, message size) point;
* :class:`SelectionTable` — measurement-driven: built from a sweep of
  simulated (or, in principle, measured) timings, it answers look-ups with
  nearest-size matching, the way an MPI library's tuning file would.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.process_map import ProcessMap

__all__ = ["CandidateConfig", "AlgorithmSelector", "SelectionTable"]


@dataclass(frozen=True)
class CandidateConfig:
    """One algorithm configuration considered by the selector."""

    algorithm: str
    options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, algorithm: str, **options) -> "CandidateConfig":
        return cls(algorithm=algorithm, options=tuple(sorted(options.items())))

    def as_kwargs(self) -> dict:
        return dict(self.options)

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        return f"{self.algorithm}({opts})" if opts else self.algorithm


def default_candidates(ppn: int) -> list[CandidateConfig]:
    """The candidate set used by the paper's evaluation (group sizes 4/8/16 plus limits)."""
    candidates = [
        CandidateConfig.make("system-mpi"),
        CandidateConfig.make("hierarchical"),
        CandidateConfig.make("node-aware"),
    ]
    for group in (4, 8, 16):
        if ppn % group == 0 and group <= ppn:
            candidates.append(CandidateConfig.make("multileader", procs_per_leader=group))
            candidates.append(CandidateConfig.make("locality-aware", procs_per_group=group))
            candidates.append(CandidateConfig.make("multileader-node-aware", procs_per_leader=group))
    return candidates


class AlgorithmSelector:
    """Pick the cheapest algorithm configuration using the analytic cost model."""

    def __init__(self, cluster: Cluster, ppn: int, candidates: Sequence[CandidateConfig] | None = None) -> None:
        self.cluster = cluster
        self.ppn = ppn
        self.candidates = list(candidates) if candidates is not None else default_candidates(ppn)
        if not self.candidates:
            raise ConfigurationError("the selector needs at least one candidate configuration")

    def predict(self, candidate: CandidateConfig, num_nodes: int, msg_bytes: int) -> float:
        """Predicted execution time of one candidate (seconds)."""
        from repro.model.predict import predict_time  # local import to avoid a cycle

        pmap = ProcessMap(self.cluster.with_nodes(max(num_nodes, 1)), ppn=self.ppn, num_nodes=num_nodes)
        return predict_time(candidate.algorithm, pmap, msg_bytes, **candidate.as_kwargs())

    def select(self, num_nodes: int, msg_bytes: int) -> tuple[CandidateConfig, float]:
        """Return the cheapest candidate and its predicted time."""
        best: tuple[CandidateConfig, float] | None = None
        for candidate in self.candidates:
            predicted = self.predict(candidate, num_nodes, msg_bytes)
            if best is None or predicted < best[1]:
                best = (candidate, predicted)
        assert best is not None
        return best

    def selection_map(self, num_nodes: int, msg_sizes: Iterable[int]) -> dict[int, str]:
        """Best candidate description per message size (a tuning-table view)."""
        return {size: self.select(num_nodes, size)[0].describe() for size in msg_sizes}


@dataclass
class SelectionTable:
    """Measurement-driven selection table.

    Entries map ``(num_nodes, msg_bytes)`` to ``(description, seconds)``;
    look-ups for unmeasured sizes use the nearest measured size at the same
    node count (logarithmic distance, matching how MPI tuning files bucket
    message sizes).
    """

    entries: dict[tuple[int, int], tuple[str, float]] = field(default_factory=dict)

    def record(self, num_nodes: int, msg_bytes: int, description: str, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("recorded times must be non-negative")
        key = (num_nodes, msg_bytes)
        current = self.entries.get(key)
        if current is None or seconds < current[1]:
            self.entries[key] = (description, seconds)

    def sizes_for(self, num_nodes: int) -> list[int]:
        return sorted(size for nodes, size in self.entries if nodes == num_nodes)

    def best(self, num_nodes: int, msg_bytes: int) -> str:
        """Best known algorithm description for the given point."""
        if (num_nodes, msg_bytes) in self.entries:
            return self.entries[(num_nodes, msg_bytes)][0]
        sizes = self.sizes_for(num_nodes)
        if not sizes:
            raise ConfigurationError(f"no measurements recorded for {num_nodes} nodes")
        idx = bisect_left(sizes, msg_bytes)
        neighbours = [s for s in (sizes[max(idx - 1, 0)], sizes[min(idx, len(sizes) - 1)])]
        nearest = min(neighbours, key=lambda s: abs(_log2(s) - _log2(msg_bytes)))
        return self.entries[(num_nodes, nearest)][0]

    def as_rows(self) -> list[tuple[int, int, str, float]]:
        """Table rows (num_nodes, msg_bytes, description, seconds), sorted."""
        return [
            (nodes, size, desc, seconds)
            for (nodes, size), (desc, seconds) in sorted(self.entries.items())
        ]


def _log2(value: int) -> float:
    from math import log2

    return log2(value) if value > 0 else 0.0
