"""Reference collective implementations built on simulated point-to-point.

These are the building blocks the paper's Algorithms 3–5 call into
(`MPI_Gather`, `MPI_Scatter`, `MPI_Alltoall` on sub-communicators, ...).
They use textbook algorithms:

* dissemination barrier,
* binomial-tree broadcast and reduce,
* linear (rooted) gather and scatter — which is what matters for the paper,
  because the gather/scatter bottleneck of the hierarchical algorithm is the
  serialization at the leader, and a linear rooted algorithm exposes it the
  same way the vendor implementations do for intra-node communicators,
* ring allgather,
* pairwise-exchange alltoall (the flat baseline; the configurable all-to-all
  family lives in :mod:`repro.core.alltoall`).

All functions are generator functions: call them with ``yield from``.
Every collective uses a tag above ``MAX_USER_TAG`` so collective traffic
never matches user point-to-point messages on the same communicator.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.errors import BufferSizeError, CommunicatorError
from repro.simmpi.datatypes import MAX_USER_TAG
from repro.simmpi.ops import LocalCopy, PostRecv, PostSend, Wait

__all__ = [
    "barrier",
    "bcast",
    "gather",
    "scatter",
    "allgather",
    "reduce",
    "allreduce",
    "alltoall",
    "alltoallv",
    "REDUCTION_OPS",
]

# Reserved tag block for collectives (one tag per collective kind).
TAG_BARRIER = MAX_USER_TAG + 1
TAG_BCAST = MAX_USER_TAG + 2
TAG_GATHER = MAX_USER_TAG + 3
TAG_SCATTER = MAX_USER_TAG + 4
TAG_ALLGATHER = MAX_USER_TAG + 5
TAG_REDUCE = MAX_USER_TAG + 6
TAG_ALLTOALL = MAX_USER_TAG + 7
TAG_ALLTOALLV = MAX_USER_TAG + 8

#: Reduction operators accepted by :func:`reduce` / :func:`allreduce`.
REDUCTION_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


def _check_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise CommunicatorError(f"root {root} out of range for communicator of size {comm.size}")


def _block_items(sendbuf: np.ndarray, recvbuf: np.ndarray, size: int, op_name: str) -> int:
    """Common buffer validation for rooted/symmetric collectives."""
    if recvbuf.size != sendbuf.size * size:
        raise BufferSizeError(
            f"{op_name}: receive buffer must hold {size} blocks of {sendbuf.size} items, "
            f"got {recvbuf.size} items"
        )
    return sendbuf.size


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------

def barrier(comm):
    """Dissemination barrier: ``ceil(log2(p))`` rounds of tiny sendrecvs."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    token = np.zeros(1, dtype=np.uint8)
    sink = np.zeros(1, dtype=np.uint8)
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        source = (rank - distance) % size
        yield from comm.sendrecv(token, dest, sink, source, sendtag=TAG_BARRIER, recvtag=TAG_BARRIER)
        distance *= 2


# ---------------------------------------------------------------------------
# Broadcast
# ---------------------------------------------------------------------------

def bcast(comm, buf: np.ndarray, root: int = 0):
    """Binomial-tree broadcast of ``buf`` from ``root`` to every rank."""
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    vrank = (rank - root) % size

    # Receive from the parent (the rank that differs in the lowest set bit).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm.recv(buf, source=parent, tag=TAG_BCAST)
            break
        mask <<= 1
    else:
        mask = 1
        while mask < size:
            mask <<= 1

    # Forward to children (higher bits below the bit we received on).
    mask >>= 1
    while mask > 0:
        if vrank & mask == 0 and vrank + mask < size:
            child = ((vrank + mask) + root) % size
            yield from comm.send(buf, dest=child, tag=TAG_BCAST)
        mask >>= 1


# ---------------------------------------------------------------------------
# Gather / Scatter
# ---------------------------------------------------------------------------

def gather(comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None, root: int = 0):
    """Linear rooted gather: every rank's ``sendbuf`` ends up as block ``r`` of the root's ``recvbuf``."""
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm.send(sendbuf, dest=root, tag=TAG_GATHER)
        return
    if recvbuf is None:
        raise BufferSizeError("gather: the root must supply a receive buffer")
    block = _block_items(sendbuf, recvbuf, size, "gather")
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    requests = []
    for src in range(size):
        if src == root:
            continue
        req = yield from comm.irecv(recv_view[src], source=src, tag=TAG_GATHER)
        requests.append(req)
    yield LocalCopy(dest=recv_view[root], source=sendbuf)
    yield from comm.waitall(requests)


def scatter(comm, sendbuf: np.ndarray | None, recvbuf: np.ndarray, root: int = 0):
    """Linear rooted scatter: block ``r`` of the root's ``sendbuf`` ends up in rank ``r``'s ``recvbuf``."""
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm.recv(recvbuf, source=root, tag=TAG_SCATTER)
        return
    if sendbuf is None:
        raise BufferSizeError("scatter: the root must supply a send buffer")
    block = _block_items(recvbuf, sendbuf, size, "scatter")
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    requests = []
    for dst in range(size):
        if dst == root:
            continue
        req = yield from comm.isend(send_view[dst], dest=dst, tag=TAG_SCATTER)
        requests.append(req)
    yield LocalCopy(dest=recvbuf, source=send_view[root])
    yield from comm.waitall(requests)


# ---------------------------------------------------------------------------
# Allgather
# ---------------------------------------------------------------------------

def allgather(comm, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Ring allgather: ``size - 1`` steps, each forwarding the previously received block."""
    size, rank = comm.size, comm.rank
    block = _block_items(sendbuf, recvbuf, size, "allgather")
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    yield LocalCopy(dest=recv_view[rank], source=sendbuf)
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        yield from comm.sendrecv(
            recv_view[send_block], right, recv_view[recv_block], left,
            sendtag=TAG_ALLGATHER, recvtag=TAG_ALLGATHER,
        )


# ---------------------------------------------------------------------------
# Reduce / Allreduce
# ---------------------------------------------------------------------------

def reduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None, op: str = "sum", root: int = 0):
    """Binomial-tree reduction of ``sendbuf`` into the root's ``recvbuf``."""
    _check_root(comm, root)
    if op not in REDUCTION_OPS:
        raise CommunicatorError(f"unknown reduction op {op!r}; choose from {sorted(REDUCTION_OPS)}")
    operator = REDUCTION_OPS[op]
    size, rank = comm.size, comm.rank
    if rank == root and recvbuf is None:
        raise BufferSizeError("reduce: the root must supply a receive buffer")
    if rank == root and recvbuf.size != sendbuf.size:
        raise BufferSizeError("reduce: send and receive buffers must have the same size")

    accumulator = np.array(sendbuf, copy=True)
    incoming = np.empty_like(sendbuf)
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm.send(accumulator, dest=parent, tag=TAG_REDUCE)
            break
        child_v = vrank | mask
        if child_v < size:
            child = (child_v + root) % size
            yield from comm.recv(incoming, source=child, tag=TAG_REDUCE)
            accumulator = operator(accumulator, incoming)
        mask <<= 1
    if rank == root:
        yield LocalCopy(dest=recvbuf, source=accumulator)


def allreduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op: str = "sum"):
    """Reduce to rank 0 followed by a broadcast (sufficient for this package's needs)."""
    if recvbuf.size != sendbuf.size:
        raise BufferSizeError("allreduce: send and receive buffers must have the same size")
    yield from reduce(comm, sendbuf, recvbuf, op=op, root=0)
    yield from bcast(comm, recvbuf, root=0)


# ---------------------------------------------------------------------------
# Alltoall (flat pairwise baseline)
# ---------------------------------------------------------------------------

def alltoall(comm, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Flat pairwise-exchange all-to-all (Algorithm 1 of the paper).

    Block ``d`` of ``sendbuf`` is delivered to rank ``d``; block ``s`` of
    ``recvbuf`` receives the data sent by rank ``s``.
    """
    size, rank = comm.size, comm.rank
    if sendbuf.size != recvbuf.size:
        raise BufferSizeError("alltoall: send and receive buffers must have the same size")
    if sendbuf.size % size != 0:
        raise BufferSizeError(
            f"alltoall: buffer of {sendbuf.size} items is not divisible into {size} blocks"
        )
    block = sendbuf.size // size
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    yield LocalCopy(dest=recv_view[rank], source=send_view[rank])
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        yield from comm.sendrecv(
            send_view[dest], dest, recv_view[source], source,
            sendtag=TAG_ALLTOALL, recvtag=TAG_ALLTOALL,
        )


# ---------------------------------------------------------------------------
# Alltoallv (variable per-peer counts)
# ---------------------------------------------------------------------------

def _check_v_layout(buf: np.ndarray, counts: np.ndarray, displs: np.ndarray, name: str) -> None:
    if displs.size != counts.size:
        raise BufferSizeError(
            f"alltoallv: {name} needs {counts.size} displacements, got {displs.size}"
        )
    if counts.size and ((displs < 0).any() or (displs + counts > buf.size).any()):
        raise BufferSizeError(
            f"alltoallv: {name} blocks exceed the {buf.size}-item buffer"
        )


def alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls):
    """Pairwise-exchange ``MPI_Alltoallv``: variable per-peer block sizes.

    Rank ``r`` sends ``sendcounts[d]`` items starting at ``sdispls[d]`` of
    ``sendbuf`` to every rank ``d`` and receives ``recvcounts[s]`` items into
    ``recvbuf`` at ``rdispls[s]`` from every rank ``s``.  Counts of zero skip
    the transfer entirely (both sides derive the schedule from the same count
    vectors, so no rank ever waits for a message that is never sent) — sparse
    traffic matrices therefore cost only the messages they actually contain.
    """
    from repro.utils.buffers import check_v_counts

    size, rank = comm.size, comm.rank
    sendcounts = check_v_counts(sendcounts, size, name="sendcounts")
    recvcounts = check_v_counts(recvcounts, size, name="recvcounts")
    sdispls = np.asarray(sdispls, dtype=np.int64)
    rdispls = np.asarray(rdispls, dtype=np.int64)
    _check_v_layout(sendbuf, sendcounts, sdispls, "send")
    _check_v_layout(recvbuf, recvcounts, rdispls, "receive")
    if sendcounts[rank] != recvcounts[rank]:
        raise BufferSizeError(
            f"alltoallv: rank {rank} sends itself {sendcounts[rank]} items "
            f"but expects to receive {recvcounts[rank]}"
        )
    if sendcounts[rank]:
        yield LocalCopy(
            dest=recvbuf[rdispls[rank]: rdispls[rank] + recvcounts[rank]],
            source=sendbuf[sdispls[rank]: sdispls[rank] + sendcounts[rank]],
        )
    # The step loop yields the primitive operations directly (the op sequence
    # of the former irecv/isend/waitall calls): this is the hot path of every
    # non-uniform workload simulation, and the per-step buffer checks and
    # rank translation are loop-invariant.
    world = comm.group.world_ranks
    context_id = comm.context_id
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        requests = []
        if recvcounts[source]:
            req = yield PostRecv(
                world[source],
                recvbuf[rdispls[source]: rdispls[source] + recvcounts[source]],
                TAG_ALLTOALLV, context_id,
            )
            requests.append(req)
        if sendcounts[dest]:
            req = yield PostSend(
                world[dest],
                sendbuf[sdispls[dest]: sdispls[dest] + sendcounts[dest]],
                TAG_ALLTOALLV, context_id,
            )
            requests.append(req)
        if requests:
            yield Wait(tuple(requests))
