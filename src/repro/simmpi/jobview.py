"""Job-local rank views for multi-job (interference) simulations.

One engine timeline can host several independent *jobs* sharing the same
machine and fabric: each job owns a contiguous range of nodes, runs its own
algorithm schedule, and never exchanges a message with another job — yet
all their packets contend for the same links, which is exactly the
interference a shared dragonfly inflicts on co-scheduled tenants.

Rank programs are written against the :class:`~repro.simmpi.engine.RankContext`
API (``ctx.rank``, ``ctx.pmap``, ``ctx.world``); to reuse every existing
algorithm unchanged inside a job, this module provides a façade that
re-exposes that API *job-locally*:

* :class:`JobComm` — a :class:`~repro.simmpi.comm.Communicator` over the
  job's engine ranks whose :meth:`~JobComm.create_subcomm` accepts
  **job-local** rank lists (the form :mod:`repro.simmpi.split` derives
  from a process map) and translates them to engine ranks;
* :class:`JobView` — the per-rank context façade: ``rank`` is the
  job-local rank, ``pmap`` the job's own process map, ``world`` the
  :class:`JobComm`; time, timings and the event sink delegate to the
  underlying engine context.

Build one with :func:`job_view`.  An algorithm generator handed a
:class:`JobView` runs bit-identically to a dedicated-machine run of the
same job — except for the contention its traffic shares with the other
jobs, which is the quantity interference experiments measure.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext

__all__ = ["JobComm", "JobView", "job_view"]


class JobComm(Communicator):
    """Communicator whose ``create_subcomm`` takes *job-local* rank lists.

    The topology-derived layouts of :mod:`repro.simmpi.split` compute rank
    lists from ``ctx.pmap`` — job-local numbering when ``ctx`` is a
    :class:`JobView`.  This subclass translates those to engine world
    ranks through its own group before delegating, so hierarchical
    algorithms build their node/group communicators inside the job without
    knowing the job is a tenant of a larger simulation.
    """

    __slots__ = ()

    def create_subcomm(self, world_ranks: Sequence[int], key: tuple | None = None) -> Communicator:
        engine_ranks = [self.group.world_rank(int(r)) for r in world_ranks]
        return Communicator.create_subcomm(self, engine_ranks, key=key)


class JobView:
    """Job-local façade over a :class:`~repro.simmpi.engine.RankContext`.

    Exposes the full rank-program API with job-local identity: algorithms,
    communicator layouts and phase recorders written against
    ``RankContext`` run unchanged.  Simulated time, phase timings and the
    result slot delegate to the engine context, so instrumentation and
    results land in the enclosing job's :class:`~repro.simmpi.engine.JobResult`.
    """

    __slots__ = ("rank", "pmap", "world", "job_index", "_base")

    def __init__(self, base: RankContext, job_index: int, job_rank: int,
                 job_pmap: ProcessMap, job_world: Communicator) -> None:
        self._base = base
        self.job_index = job_index
        self.rank = job_rank
        self.pmap = job_pmap
        self.world = job_world

    # -- identity helpers (job-local) ---------------------------------------
    @property
    def nprocs(self) -> int:
        return self.pmap.nprocs

    @property
    def node(self) -> int:
        return self.pmap.node_of(self.rank)

    @property
    def local_rank(self) -> int:
        return self.pmap.local_rank(self.rank)

    # -- engine delegation ---------------------------------------------------
    @property
    def now(self) -> float:
        return self._base.now

    @property
    def _engine(self):
        return self._base._engine

    @property
    def result(self):
        return self._base.result

    @result.setter
    def result(self, value) -> None:
        self._base.result = value

    @property
    def timings(self) -> dict:
        return self._base.timings

    def add_timing(self, phase: str, elapsed: float) -> None:
        self._base.add_timing(phase, elapsed)

    def record_span(self, name: str, start: float, stop: float) -> None:
        self._base.record_span(name, start, stop)


def job_view(ctx: RankContext, job_index: int, rank_base: int,
             job_pmap: ProcessMap) -> JobView:
    """Build the :class:`JobView` of ``ctx`` for the job owning it.

    The job occupies the contiguous engine ranks ``[rank_base,
    rank_base + job_pmap.nprocs)``; ``ctx.rank`` must fall inside that
    range.  The job's world communicator is constructed deterministically
    (every member derives the same context id without communication),
    keyed by ``job_index`` so distinct jobs never share a context.
    """
    nprocs = job_pmap.nprocs
    if not rank_base <= ctx.rank < rank_base + nprocs:
        raise ConfigurationError(
            f"rank {ctx.rank} is outside job {job_index} "
            f"(engine ranks {rank_base}..{rank_base + nprocs - 1})"
        )
    engine_ranks = tuple(range(rank_base, rank_base + nprocs))
    sub = ctx.world.create_subcomm(engine_ranks, key=("phased-job", job_index))
    world = JobComm(
        allocator=sub._allocator,
        world_ranks=sub.group,
        my_world_rank=ctx.rank,
        context_id=sub.context_id,
    )
    return JobView(ctx, job_index, world.rank, job_pmap, world)
