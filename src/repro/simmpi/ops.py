"""Primitive operations yielded by rank programs to the engine.

Rank programs (and the communicator methods they call) never touch the
engine directly: they ``yield`` one of the small operation objects below and
are resumed by the engine with the operation's result (a request, a status,
or nothing).  Keeping this interface tiny makes the simulated-MPI semantics
easy to audit: everything a program can do to the simulated machine is
listed in this module.

The engine consumes an operation *synchronously*, while the yielding rank
is still suspended: every field is read (and any payload that must outlive
the dispatch is copied) before the program resumes.  A program may
therefore reuse one operation record across yields, mutating its fields in
place — the hot exchange loops do exactly that to avoid an allocation per
simulated message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simmpi.request import Request

__all__ = ["PostSend", "PostRecv", "Wait", "Delay", "LocalCopy", "Operation"]


@dataclass(slots=True)
class PostSend:
    """Post a (non-blocking) send of ``payload`` to world rank ``dest``.

    Buffered-send semantics: the payload is consumed before the operation
    returns — copied straight into the matching receive buffer when the
    match happens while posting, snapshotted into the unexpected queue
    otherwise — so the caller may reuse the underlying buffer immediately.
    Resumes with the :class:`Request`.
    """

    dest: int
    payload: np.ndarray
    tag: int
    context_id: int


@dataclass(slots=True)
class PostRecv:
    """Post a (non-blocking) receive into ``buffer`` from ``source``.

    ``buffer`` must be a writable NumPy view; the engine fills it when the
    matching message is delivered.  Resumes with the :class:`Request`.
    """

    source: int
    buffer: np.ndarray
    tag: int
    context_id: int


@dataclass(slots=True)
class Wait:
    """Block until every request in ``requests`` has completed.

    Resumes with the list of statuses (``None`` entries for send requests)
    at the simulated time the last request completes.
    """

    requests: Sequence[Request]


@dataclass(slots=True)
class Delay:
    """Advance this rank's clock by ``seconds`` of local work (packing, compute)."""

    seconds: float


@dataclass(slots=True)
class LocalCopy:
    """Copy ``source`` into ``dest`` locally, charging the memory-copy cost.

    Used for self-messages and for the repacking steps of the hierarchical
    algorithms, so that data rearrangement is not free in the simulation.
    """

    dest: np.ndarray
    source: np.ndarray


Operation = (PostSend, PostRecv, Wait, Delay, LocalCopy)
