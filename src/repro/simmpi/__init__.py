"""Simulated MPI: an mpi4py-like API running on a discrete-event machine model.

The package provides everything the paper's algorithms need from MPI:

* :class:`~repro.simmpi.comm.Communicator` — ranks, groups, point-to-point
  (blocking and non-blocking), collectives and communicator splitting;
* :class:`~repro.simmpi.engine.SpmdEngine` — runs one generator ("rank
  program") per simulated process over a :class:`repro.machine.ProcessMap`,
  charging communication costs from the machine's
  :class:`~repro.machine.params.MachineParameters`;
* :mod:`repro.simmpi.collectives` — reference gather / scatter / bcast /
  allgather / allreduce / barrier implementations built on point-to-point.

Rank programs are ordinary Python generator functions: every communication
call is made with ``yield from``, e.g.::

    def program(ctx):
        comm = ctx.world
        data = np.full(4, ctx.rank, dtype=np.int64)
        recv = np.empty(4 * comm.size, dtype=np.int64)
        yield from comm.allgather(data, recv)
        ctx.result = recv

    result = run_spmd(process_map, program)

The returned :class:`~repro.simmpi.engine.JobResult` carries per-rank
results, the simulated elapsed time and (optionally) a full message trace.
"""

from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG, PROC_NULL, nbytes_of
from repro.simmpi.status import Status
from repro.simmpi.request import Request
from repro.simmpi.group import Group
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import JobResult, RankContext, SpmdEngine, run_spmd
from repro.simmpi.split import CommLayout, build_comm_layout

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "nbytes_of",
    "Status",
    "Request",
    "Group",
    "Communicator",
    "JobResult",
    "RankContext",
    "SpmdEngine",
    "run_spmd",
    "CommLayout",
    "build_comm_layout",
]
