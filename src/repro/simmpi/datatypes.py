"""Constants and datatype helpers for the simulated MPI layer.

The simulated MPI communicates NumPy arrays directly (mirroring mpi4py's
upper-case buffer interface), so "datatypes" reduce to byte-size helpers and
the special wildcard / null constants MPI programs expect.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "PROC_NULL", "MAX_USER_TAG", "nbytes_of", "itemsize_of"]

#: Wildcard source for receives (matches a message from any rank).
ANY_SOURCE: int = -1
#: Wildcard tag for receives (matches a message with any tag).
ANY_TAG: int = -1
#: Null process: sends/receives addressed to it complete immediately and move no data.
PROC_NULL: int = -2
#: Largest tag value user code may use; larger tags are reserved for collectives.
MAX_USER_TAG: int = 2**20


def nbytes_of(buf: np.ndarray) -> int:
    """Byte size of a NumPy buffer (the message size used by the cost model)."""
    if not isinstance(buf, np.ndarray):
        raise TypeError(f"expected a numpy.ndarray, got {type(buf).__name__}")
    return int(buf.nbytes)


def itemsize_of(buf: np.ndarray) -> int:
    """Size in bytes of one element of ``buf``."""
    if not isinstance(buf, np.ndarray):
        raise TypeError(f"expected a numpy.ndarray, got {type(buf).__name__}")
    return int(buf.dtype.itemsize)
