"""Point-to-point message timing and matching.

This module implements the performance model of a single message and the
MPI matching semantics (posted-receive and unexpected-message queues per
rank).  It is used by the engine; rank programs never call it directly.

Timing model
------------
A message from rank *s* to rank *d* of *n* bytes is charged:

* the sender-side CPU overhead (charged by the engine before the message
  reaches this module);
* if the ranks are on different nodes, NIC injection at the sender's node:
  all inter-node messages leaving a node serialize on a
  :class:`~repro.netsim.resources.SerialResource`, each occupying the NIC
  for ``nic_message_overhead + n / injection_bandwidth`` seconds — the
  injection bottleneck the paper identifies for >100-rank nodes;
* a wire/fabric term ``alpha_level + n * beta_level`` where the level is
  the locality between the two ranks (NUMA, socket, node or network);
* at the receiver, a matching cost proportional to the number of queue
  entries scanned plus the receive CPU overhead.

Messages larger than ``eager_limit`` use a rendezvous protocol: the data
transfer cannot start before the receiver has posted the matching receive
(plus a handshake delay), which is what makes pairwise exchange wait idly
when its partner is late — exactly the synchronization cost discussed in
Section 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MatchingError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.params import MachineParameters
from repro.machine.process_map import ProcessMap
from repro.netsim.resources import SerialResource, ThroughputTracker
from repro.netsim.trace import MessageRecord, TraceRecorder
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.simmpi.request import Request
from repro.simmpi.status import Status

__all__ = ["TimingModel", "MessageRouter"]


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


class TimingModel:
    """Computes transfer times over the machine model.

    One NIC injection resource is kept per node; intra-node transfers only
    pay the level latency/bandwidth costs (the sending core performs the
    copy through shared memory).
    """

    def __init__(self, pmap: ProcessMap) -> None:
        self.pmap = pmap
        self.params: MachineParameters = pmap.params
        self.nics = [SerialResource(name=f"nic-node{n}") for n in range(pmap.num_nodes)]
        # Shared cross-NUMA fabric per node: intra-node transfers that cross a
        # NUMA boundary (SOCKET and NODE levels) serialize on it, modelling
        # the UPI / inter-chip bandwidth contention of many-core nodes.
        self.fabrics = [SerialResource(name=f"fabric-node{n}") for n in range(pmap.num_nodes)]

    def level(self, src: int, dst: int) -> LocalityLevel:
        return self.pmap.locality(src, dst)

    def control_latency(self, level: LocalityLevel) -> float:
        """One-way latency of a tiny control message (RTS/CTS) at ``level``."""
        if level == LocalityLevel.SELF:
            return 0.0
        return self.params.latency(level)

    def transfer(self, src: int, dst: int, nbytes: int, start_time: float) -> tuple[float, float, LocalityLevel]:
        """Move ``nbytes`` from ``src`` to ``dst`` starting no earlier than ``start_time``.

        Returns ``(sender_done, arrival, level)``: the time the sending side
        finishes injecting the data and the time the data is fully available
        at the receiver.
        """
        params = self.params
        level = self.pmap.locality(src, dst)
        if level == LocalityLevel.SELF:
            done = start_time + nbytes / params.copy_bandwidth
            return done, done, level
        if level == LocalityLevel.NETWORK:
            occupancy = params.injection_time(nbytes)
            _, injected = self.nics[self.pmap.node_of(src)].reserve(start_time, occupancy)
            arrival = injected + params.latency(level) + nbytes * params.byte_time(level)
            return injected, arrival, level
        # Intra-node: the sender's core streams the data through shared memory.
        # Transfers that cross a NUMA boundary additionally serialize on the
        # node's shared fabric, so many concurrent cross-socket exchanges
        # (e.g. a 112-rank on-node all-to-all) contend with each other.
        if level in (LocalityLevel.SOCKET, LocalityLevel.NODE):
            occupancy = params.fabric_time(nbytes)
            start_time, _ = self.fabrics[self.pmap.node_of(src)].reserve(start_time, occupancy)
        done = start_time + nbytes * params.byte_time(level)
        arrival = done + params.latency(level)
        return done, arrival, level

    def nic_statistics(self) -> list[dict]:
        """Per-node NIC accounting (reservations, busy time)."""
        return [
            {"node": i, "messages": nic.reservations, "busy_time": nic.busy_time}
            for i, nic in enumerate(self.nics)
        ]


# ---------------------------------------------------------------------------
# Matching structures
# ---------------------------------------------------------------------------


@dataclass
class _InboundSend:
    """A send that has been posted and is waiting to be matched at ``dst``."""

    request: Request
    src: int
    dst: int
    tag: int
    context_id: int
    nbytes: int
    payload: np.ndarray
    protocol: str  # "eager" or "rndv"
    #: Eager: time the data arrives at the receiver.  Rendezvous: time the
    #: ready-to-send control message arrives at the receiver.
    ready_time: float
    #: Rendezvous only: earliest time the sender can start the data transfer.
    sender_ready: float
    post_time: float
    level: LocalityLevel


@dataclass
class _PostedRecv:
    """A receive that has been posted and is waiting for a matching send."""

    request: Request
    owner: int
    source_spec: int
    tag_spec: int
    context_id: int
    buffer: np.ndarray
    post_time: float


@dataclass
class _Mailbox:
    """Matching queues of a single rank."""

    posted: list[_PostedRecv] = field(default_factory=list)
    unexpected: list[_InboundSend] = field(default_factory=list)


def _copy_payload(buffer: np.ndarray, payload: np.ndarray) -> None:
    """Byte-wise copy of ``payload`` into the start of ``buffer``."""
    nbytes = payload.nbytes
    if nbytes == 0:
        return
    if buffer.nbytes < nbytes:
        raise MatchingError(
            f"receive buffer of {buffer.nbytes} bytes is too small for a {nbytes}-byte message"
        )
    dst_bytes = buffer.reshape(-1).view(np.uint8)
    src_bytes = payload.reshape(-1).view(np.uint8)
    dst_bytes[:nbytes] = src_bytes
    # ``buffer`` is a view into the receiver's array, so the write above is
    # already visible to the receiving rank; nothing else to do.


def _matches(recv_source: int, recv_tag: int, recv_ctx: int, send: _InboundSend) -> bool:
    if recv_ctx != send.context_id:
        return False
    if recv_source != ANY_SOURCE and recv_source != send.src:
        return False
    if recv_tag != ANY_TAG and recv_tag != send.tag:
        return False
    return True


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------


class MessageRouter:
    """Owns every rank's matching queues and applies the timing model."""

    def __init__(
        self,
        timing: TimingModel,
        *,
        trace: TraceRecorder | None = None,
        traffic: ThroughputTracker | None = None,
    ) -> None:
        self.timing = timing
        self.params = timing.params
        self.trace = trace
        self.traffic = traffic if traffic is not None else ThroughputTracker(name="p2p")
        self._mailboxes = [_Mailbox() for _ in range(timing.pmap.nprocs)]

    # -- posting ------------------------------------------------------------
    def post_send(
        self,
        src: int,
        dst: int,
        payload: np.ndarray,
        tag: int,
        context_id: int,
        ready_time: float,
    ) -> Request:
        """Post a send whose data is ready at simulated ``ready_time``."""
        request = Request("send", src)
        nbytes = int(payload.nbytes)
        data = np.array(payload.reshape(-1), copy=True)
        level = self.timing.level(src, dst)
        self.traffic.record(nbytes, key=level)

        if self.params.is_eager(nbytes):
            sender_done, arrival, level = self.timing.transfer(src, dst, nbytes, ready_time)
            request.complete(sender_done)
            inbound = _InboundSend(
                request=request, src=src, dst=dst, tag=tag, context_id=context_id,
                nbytes=nbytes, payload=data, protocol="eager", ready_time=arrival,
                sender_ready=ready_time, post_time=ready_time, level=level,
            )
        else:
            rts_arrival = ready_time + 0.5 * self.params.rendezvous_overhead \
                + self.timing.control_latency(level)
            inbound = _InboundSend(
                request=request, src=src, dst=dst, tag=tag, context_id=context_id,
                nbytes=nbytes, payload=data, protocol="rndv", ready_time=rts_arrival,
                sender_ready=ready_time, post_time=ready_time, level=level,
            )
        self._deliver(inbound)
        return request

    def post_recv(
        self,
        owner: int,
        source_spec: int,
        buffer: np.ndarray,
        tag_spec: int,
        context_id: int,
        post_time: float,
    ) -> Request:
        """Post a receive at simulated ``post_time``."""
        request = Request("recv", owner)
        mailbox = self._mailboxes[owner]
        scanned = 0
        for i, inbound in enumerate(mailbox.unexpected):
            scanned += 1
            if _matches(source_spec, tag_spec, context_id, inbound):
                mailbox.unexpected.pop(i)
                posted = _PostedRecv(
                    request=request, owner=owner, source_spec=source_spec,
                    tag_spec=tag_spec, context_id=context_id, buffer=buffer,
                    post_time=post_time,
                )
                self._complete_match(inbound, posted, scanned)
                return request
        mailbox.posted.append(
            _PostedRecv(
                request=request, owner=owner, source_spec=source_spec,
                tag_spec=tag_spec, context_id=context_id, buffer=buffer,
                post_time=post_time,
            )
        )
        return request

    # -- internal ------------------------------------------------------------
    def _deliver(self, inbound: _InboundSend) -> None:
        mailbox = self._mailboxes[inbound.dst]
        scanned = 0
        for i, posted in enumerate(mailbox.posted):
            scanned += 1
            if _matches(posted.source_spec, posted.tag_spec, posted.context_id, inbound):
                mailbox.posted.pop(i)
                self._complete_match(inbound, posted, scanned)
                return
        mailbox.unexpected.append(inbound)

    def _complete_match(self, inbound: _InboundSend, posted: _PostedRecv, scanned: int) -> None:
        params = self.params
        match_cost = scanned * params.match_overhead_per_entry
        if inbound.protocol == "eager":
            completion = max(inbound.ready_time, posted.post_time) + match_cost + params.recv_overhead
            arrival = inbound.ready_time
        else:
            handshake = max(inbound.ready_time, posted.post_time) + match_cost
            clear_to_send = handshake + 0.5 * params.rendezvous_overhead \
                + self.timing.control_latency(inbound.level)
            data_start = max(inbound.sender_ready, clear_to_send)
            sender_done, arrival, _ = self.timing.transfer(
                inbound.src, inbound.dst, inbound.nbytes, data_start
            )
            inbound.request.complete(sender_done)
            completion = arrival + params.recv_overhead
        _copy_payload(posted.buffer, inbound.payload)
        status = Status(source=inbound.src, tag=inbound.tag, nbytes=inbound.nbytes)
        posted.request.complete(completion, status)
        if self.trace is not None:
            self.trace.record(
                MessageRecord(
                    source=inbound.src, dest=inbound.dst, nbytes=inbound.nbytes,
                    level=inbound.level, tag=inbound.tag, context_id=inbound.context_id,
                    post_time=inbound.post_time, arrival_time=arrival,
                    completion_time=completion,
                )
            )

    # -- diagnostics -----------------------------------------------------------
    def pending_summary(self) -> list[str]:
        """Describe outstanding queue entries (used in deadlock reports)."""
        lines = []
        for rank, mailbox in enumerate(self._mailboxes):
            for posted in mailbox.posted:
                lines.append(
                    f"rank {rank}: posted recv waiting for source={posted.source_spec} "
                    f"tag={posted.tag_spec} ctx={posted.context_id}"
                )
            for inbound in mailbox.unexpected:
                lines.append(
                    f"rank {rank}: unexpected message from {inbound.src} "
                    f"tag={inbound.tag} ctx={inbound.context_id} ({inbound.nbytes} bytes)"
                )
        return lines

    def has_pending(self) -> bool:
        return any(m.posted or m.unexpected for m in self._mailboxes)
