"""Point-to-point message timing and matching.

This module implements the performance model of a single message and the
MPI matching semantics (posted-receive and unexpected-message queues per
rank).  It is used by the engine; rank programs never call it directly.

Timing model
------------
A message from rank *s* to rank *d* of *n* bytes is charged:

* the sender-side CPU overhead (charged by the engine before the message
  reaches this module);
* if the ranks are on different nodes, NIC injection at the sender's node:
  all inter-node messages leaving a node serialize on a
  :class:`~repro.netsim.resources.SerialResource`, each occupying the NIC
  for ``nic_message_overhead + n / injection_bandwidth`` seconds — the
  injection bottleneck the paper identifies for >100-rank nodes;
* if the cluster configures a contended inter-node fabric
  (:mod:`repro.netsim.fabric`), FIFO traversal of every shared link on the
  message's node-to-node route — the queueing delay of fat-tree uplinks or
  dragonfly global links; the full-bisection default skips this entirely;
* a wire/fabric term ``alpha_level + n * beta_level`` where the level is
  the locality between the two ranks (NUMA, socket, node or network);
* at the receiver, a matching cost proportional to the number of queue
  entries scanned plus the receive CPU overhead.

Messages larger than ``eager_limit`` use a rendezvous protocol: the data
transfer cannot start before the receiver has posted the matching receive
(plus a handshake delay), which is what makes pairwise exchange wait idly
when its partner is late — exactly the synchronization cost discussed in
Section 2 of the paper.

Indexed matching
----------------
Matching used to be a linear scan with ``pop(i)``: O(queue length) per
message, O(P^3) aggregate for a P-rank all-to-all with long queues.  The
queues are now indexed by the full ``(context_id, source, tag)`` key — a
deque of sequence numbers per key — with a FIFO-ordered scan kept for
``ANY_SOURCE``/``ANY_TAG`` receives, so a specific match costs O(log q)
instead of O(q).

The timing model charges ``scanned * match_overhead_per_entry`` per match,
where ``scanned`` is the number of entries a linear scan would have walked
— i.e. the matched entry's 1-based position in FIFO order among the live
entries.  That count must survive the indexing exactly (the simulated
timings are pinned bit-for-bit by ``tests/golden/simulated_timings.json``),
so each queue maintains a Fenwick tree over its sequence numbers: the
position of an entry is the prefix count of live sequence numbers up to
its own, an O(log q) order-statistics query that is equal, entry for
entry, to what the removed linear scan counted.

Payload copies
--------------
``post_send`` used to snapshot the payload eagerly and copy it a second
time into the receive buffer at match.  Both matching structures are
updated synchronously while the sending rank is still suspended inside the
engine, so when the match happens in that same event cascade the payload
is copied exactly once, straight into the posted receive buffer.  Only a
message that has to sit in the unexpected queue is snapshotted — at which
point the buffered-send contract (the sender may reuse its buffer as soon
as the operation returns) requires the copy.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import MatchingError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.params import MachineParameters
from repro.machine.process_map import ProcessMap
from repro.netsim.resources import SerialResource, ThroughputTracker
from repro.netsim.trace import MessageRecord, TraceRecorder
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.simmpi.request import Request
from repro.simmpi.status import Status

__all__ = ["TimingModel", "MessageRouter"]


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


class TimingModel:
    """Computes transfer times over the machine model.

    One NIC injection resource is kept per node; intra-node transfers only
    pay the level latency/bandwidth costs (the sending core performs the
    copy through shared memory).  Per-pair locality and per-rank node
    lookups are cached: they are pure functions of the process map, queried
    once per simulated message on the hot path.
    """

    def __init__(self, pmap: ProcessMap, *, sink=None, faults=None) -> None:
        self.pmap = pmap
        self.params: MachineParameters = pmap.params
        #: Optional :class:`repro.obs.sink.EventSink`; ``None`` keeps every
        #: emission down to one pointer test (the zero-overhead-when-off
        #: contract of :mod:`repro.obs`).
        self.sink = sink
        # Folded maps schedule only node 0: per-node mutable resources are
        # allocated for the simulated nodes only (a 64k-node folded job must
        # not allocate 64k NIC objects it never touches).
        sim_nodes = pmap.sim_nodes
        self.nics = [SerialResource(name=f"nic-node{n}") for n in range(sim_nodes)]
        # Shared cross-NUMA fabric per node: intra-node transfers that cross a
        # NUMA boundary (SOCKET and NODE levels) serialize on it, modelling
        # the UPI / inter-chip bandwidth contention of many-core nodes.
        self.fabrics = [SerialResource(name=f"fabric-node{n}") for n in range(sim_nodes)]
        #: Inter-node fabric state (shared links + routes), or ``None`` for
        #: the contention-free full-bisection default — in which case every
        #: network path below keeps its original, fabric-free arithmetic
        #: and the simulated timings stay bit-identical to the golden
        #: fixture.
        self.fabric = pmap.cluster.fabric.build(pmap.num_nodes, pmap.params)
        #: Active :class:`repro.faults.FaultSpec` (``None`` for the healthy
        #: machine — empty specs are normalised to ``None`` so every hot
        #: path keeps the single-pointer-test contract).
        self.faults = faults if faults else None
        #: Per-node NIC occupancy multipliers from straggler faults, or
        #: ``None`` when no straggler applies (the common case).
        self._nic_scale = None
        if self.faults is not None:
            from repro.faults.apply import apply_link_faults, nic_scale_vector

            if self.fabric is not None:
                # Link faults mutate the freshly built state before any
                # traffic; folded views are rejected upstream (faults break
                # the node-rotation symmetry folding relies on).
                apply_link_faults(self.fabric, self.faults)
            self._nic_scale = nic_scale_vector(self.faults, sim_nodes)
            if sink is not None:
                from repro.faults.apply import announce_faults

                announce_faults(sink, self.faults)
        if self.fabric is not None:
            if pmap.is_folded:
                from repro.netsim.fabric import FoldedFabricView

                self.fabric = FoldedFabricView(self.fabric, sim_nodes)
            self.fabric.sink = sink
        params = self.params
        self._node_of = [pmap.node_of(rank) for rank in range(pmap.nprocs)]
        self._latency = {level: params.latency(level) for level in LocalityLevel}
        self._byte_time = {level: params.byte_time(level) for level in LocalityLevel}
        self._copy_bandwidth = params.copy_bandwidth
        self._injection_bandwidth = params.injection_bandwidth
        self._nic_message_overhead = params.nic_message_overhead
        self._cross_numa_bandwidth = params.cross_numa_bandwidth

    def level(self, src: int, dst: int) -> LocalityLevel:
        return self.pmap.locality(src, dst)

    def control_latency(self, level: LocalityLevel) -> float:
        """One-way latency of a tiny control message (RTS/CTS) at ``level``."""
        if level == LocalityLevel.SELF:
            return 0.0
        return self._latency[level]

    def lookahead(self) -> float:
        """Conservative lower bound on cross-node data-arrival latency.

        No payload sent between two distinct nodes can *arrive* sooner than
        ``nic_message_overhead`` (the zero-byte NIC injection occupancy) plus
        the NETWORK wire latency plus — when a fabric is configured — the
        uncongested latency of its cheapest route.  With no fabric the NIC
        floor plus wire latency is the whole bound.  The parallel engine
        (:mod:`repro.simmpi.parallel`) uses this as its conservative-PDES
        lookahead window; note that *sender-side* completions of rendezvous
        sends are only bounded by the ``nic_message_overhead`` injection
        floor, which is the runtime-guarded invariant.
        """
        bound = self._nic_message_overhead + self._latency[LocalityLevel.NETWORK]
        fabric = self.fabric
        if fabric is not None:
            bound += fabric.min_route_latency()
        return bound

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start_time: float,
        level: LocalityLevel | None = None,
    ) -> tuple[float, float, LocalityLevel]:
        """Move ``nbytes`` from ``src`` to ``dst`` starting no earlier than ``start_time``.

        Returns ``(sender_done, arrival, level)``: the time the sending side
        finishes injecting the data and the time the data is fully available
        at the receiver.  Callers that already resolved the pair's locality
        pass it in to skip the lookup.
        """
        if level is None:
            level = self.pmap.locality(src, dst)
        if level is LocalityLevel.SELF:
            done = start_time + nbytes / self._copy_bandwidth
            return done, done, level
        if level is LocalityLevel.NETWORK:
            # Inlined SerialResource.reserve (one reservation per inter-node
            # message): same arithmetic and accounting, no call overhead.
            occupancy = self._nic_message_overhead + nbytes / self._injection_bandwidth
            src_node = self._node_of[src]
            nic_scale = self._nic_scale
            if nic_scale is not None:
                occupancy *= nic_scale[src_node]
            nic = self.nics[src_node]
            available = nic.available_at
            start = start_time if start_time >= available else available
            injected = start + occupancy
            nic.available_at = injected
            nic.busy_time += occupancy
            nic.reservations += 1
            sink = self.sink
            if sink is not None:
                sink.nic(self._node_of[src], start_time, start, injected, nbytes)
            fabric = self.fabric
            if fabric is None:
                arrival = injected + self._latency[level] + nbytes * self._byte_time[level]
            else:
                # The injected message queues on each shared link of its
                # route before the terminal wire/latency term; the sender is
                # free as soon as the NIC finishes injecting.
                exit_time = fabric.traverse(
                    self._node_of[src], self._node_of[dst], nbytes, injected
                )
                arrival = exit_time + self._latency[level] + nbytes * self._byte_time[level]
            return injected, arrival, level
        # Intra-node: the sender's core streams the data through shared memory.
        # Transfers that cross a NUMA boundary additionally serialize on the
        # node's shared fabric, so many concurrent cross-socket exchanges
        # (e.g. a 112-rank on-node all-to-all) contend with each other.
        if level is LocalityLevel.SOCKET or level is LocalityLevel.NODE:
            occupancy = nbytes / self._cross_numa_bandwidth
            fabric = self.fabrics[self._node_of[src]]
            available = fabric.available_at
            start = start_time if start_time >= available else available
            fabric.available_at = start + occupancy
            fabric.busy_time += occupancy
            fabric.reservations += 1
            start_time = start
        done = start_time + nbytes * self._byte_time[level]
        arrival = done + self._latency[level]
        return done, arrival, level

    def nic_statistics(self) -> list[dict]:
        """Per-node NIC accounting (reservations, busy time)."""
        return [
            {"node": i, "messages": nic.reservations, "busy_time": nic.busy_time}
            for i, nic in enumerate(self.nics)
        ]

    def fabric_statistics(self) -> list[dict]:
        """Per-link inter-node fabric accounting (empty for full bisection)."""
        if self.fabric is None:
            return []
        return self.fabric.statistics()


# ---------------------------------------------------------------------------
# Matching structures
# ---------------------------------------------------------------------------


class _InboundSend:
    """A send that has been posted and is waiting to be matched at ``dst``."""

    __slots__ = (
        "request", "src", "dst", "tag", "context_id", "nbytes", "payload",
        "protocol", "ready_time", "sender_ready", "post_time", "level",
    )

    def __init__(self, request, src, dst, tag, context_id, nbytes, payload,
                 protocol, ready_time, sender_ready, post_time, level):
        self.request = request
        self.src = src
        self.dst = dst
        self.tag = tag
        self.context_id = context_id
        self.nbytes = nbytes
        #: The live send buffer until the message has to sit in the
        #: unexpected queue, at which point it is snapshotted (see the
        #: delivery step of :meth:`MessageRouter.post_send`).
        self.payload = payload
        self.protocol = protocol  # "eager" or "rndv"
        #: Eager: time the data arrives at the receiver.  Rendezvous: time
        #: the ready-to-send control message arrives at the receiver.
        self.ready_time = ready_time
        #: Rendezvous only: earliest time the sender can start the transfer.
        self.sender_ready = sender_ready
        self.post_time = post_time
        self.level = level


class _PostedRecv:
    """A receive that has been posted and is waiting for a matching send."""

    __slots__ = ("request", "owner", "source_spec", "tag_spec", "context_id",
                 "buffer", "post_time")

    def __init__(self, request, owner, source_spec, tag_spec, context_id,
                 buffer, post_time):
        self.request = request
        self.owner = owner
        self.source_spec = source_spec
        self.tag_spec = tag_spec
        self.context_id = context_id
        self.buffer = buffer
        self.post_time = post_time


class _Fenwick:
    """Binary indexed tree of live-entry flags over queue sequence numbers.

    ``rank(seq)`` — the number of live entries with sequence number at most
    ``seq`` — is exactly the 1-based FIFO position a linear scan would
    report for the entry, which is what the matching-cost model charges.
    """

    __slots__ = ("_tree", "_cap")

    def __init__(self, cap: int, live_seqs) -> None:
        self._cap = cap
        tree = [0] * (cap + 1)
        for seq in live_seqs:
            tree[seq + 1] += 1
        for i in range(1, cap + 1):
            parent = i + (i & -i)
            if parent <= cap:
                tree[parent] += tree[i]
        self._tree = tree

    def add(self, seq: int, delta: int) -> None:
        tree = self._tree
        cap = self._cap
        i = seq + 1
        while i <= cap:
            tree[i] += delta
            i += i & -i

    def rank(self, seq: int) -> int:
        """Number of live entries with sequence number <= ``seq``."""
        tree = self._tree
        total = 0
        i = seq + 1
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


class _MatchQueue:
    """One matching queue (posted receives or unexpected messages) of a rank.

    Entries carry monotonically increasing sequence numbers.  A dict keyed
    by the full ``(context_id, source, tag)`` triple holds per-key FIFO
    deques of sequence numbers for O(1) earliest-candidate lookup; the
    insertion-ordered ``_live`` dict preserves the global FIFO order for
    wildcard scans; the Fenwick tree answers the exact linear-scan position
    of any removed entry.  Deques are cleaned lazily: a wildcard match can
    remove an entry from the middle of another key's deque, which is
    detected by the ``seq in _live`` test at the next head access.
    """

    __slots__ = ("_live", "_by_key", "_fenwick", "_pending", "_next_seq", "_head_seq")

    def __init__(self) -> None:
        self._live: dict[int, tuple] = {}  # seq -> (key, entry), FIFO order
        #: key -> sequence number (single live candidate, the common case) or
        #: a FIFO deque of sequence numbers.  The bare-int representation
        #: avoids a deque allocation per key — in a uniform all-to-all every
        #: message carries a distinct (context, source, tag) key.
        self._by_key: dict[tuple, int | deque] = {}
        #: Order-statistics tree, materialised lazily: a queue whose matches
        #: all happen at the head (pairwise exchange) never builds one.
        self._fenwick: _Fenwick | None = None
        #: (seq, delta) updates not yet applied to the tree.
        self._pending: list[tuple[int, int]] = []
        self._next_seq = 0
        self._head_seq = 0

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def append(self, key: tuple, entry) -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        self._live[seq] = (key, entry)
        self._pending.append((seq, 1))
        by_key = self._by_key
        val = by_key.get(key)
        if val is None:
            by_key[key] = seq
        elif val.__class__ is int:
            by_key[key] = deque((val, seq))
        else:
            val.append(seq)

    def _clean_key(self, key: tuple, val) -> int | None:
        """Earliest live seq recorded under ``key`` (pruning stale records)."""
        live = self._live
        if val.__class__ is int:
            if val in live:
                return val
            del self._by_key[key]
            return None
        while val:
            head = val[0]
            if head in live:
                return head
            val.popleft()
        del self._by_key[key]
        return None

    def first_for_keys(self, keys: tuple) -> int | None:
        """Earliest live sequence number whose key is one of ``keys``."""
        by_key = self._by_key
        best = -1
        for key in keys:
            val = by_key.get(key)
            if val is None:
                continue
            head = self._clean_key(key, val)
            if head is not None and (best < 0 or head < best):
                best = head
        return best if best >= 0 else None

    def first_matching(self, predicate) -> int | None:
        """FIFO wildcard path: earliest live entry satisfying ``predicate``."""
        for seq, (_key, entry) in self._live.items():
            if predicate(entry):
                return seq
        return None

    def _position(self, seq: int) -> int:
        """Exact 1-based FIFO position of live entry ``seq`` (Fenwick query).

        The tree is (re)built from the live set — the ground truth every
        pending delta is already reflected in — whenever it is missing or
        the sequence space outgrew its capacity; otherwise the buffered
        deltas are applied first.
        """
        fenwick = self._fenwick
        pending = self._pending
        if fenwick is None or self._next_seq > fenwick._cap:
            cap = 64
            while cap < self._next_seq:
                cap *= 2
            self._fenwick = fenwick = _Fenwick(cap, self._live)
        elif pending:
            add = fenwick.add
            for update in pending:
                add(update[0], update[1])
        pending.clear()
        return fenwick.rank(seq)

    def _scanned_of(self, seq: int) -> int:
        """1-based FIFO position of live entry ``seq`` — what a linear scan
        would have counted.  The common head removal needs no
        order-statistics work at all."""
        live = self._live
        head = self._head_seq
        next_seq = self._next_seq
        while head < next_seq and head not in live:
            head += 1
        self._head_seq = head
        return 1 if seq == head else self._position(seq)

    def take(self, seq: int):
        """Remove entry ``seq``; returns ``(entry, scanned)``."""
        scanned = self._scanned_of(seq)
        self._pending.append((seq, -1))
        key, entry = self._live.pop(seq)
        by_key = self._by_key
        val = by_key.get(key)
        if val is not None:
            self._clean_key(key, val)
        return entry, scanned

    def take_for_key(self, key: tuple):
        """Remove the earliest entry carrying exactly ``key``.

        Returns ``(entry, scanned)`` or ``None``; the fused probe-and-remove
        of the fully-specified match, one dictionary walk instead of two.
        """
        by_key = self._by_key
        val = by_key.get(key)
        if val is None:
            return None
        live = self._live
        if val.__class__ is int:
            if val not in live:
                del by_key[key]
                return None
            seq = val
            del by_key[key]
        else:
            while val:
                seq = val[0]
                if seq in live:
                    break
                val.popleft()
            else:
                del by_key[key]
                return None
            val.popleft()
            if not val:
                del by_key[key]
        # Inlined _scanned_of (one call per fully-specified match).
        head = self._head_seq
        next_seq = self._next_seq
        while head < next_seq and head not in live:
            head += 1
        self._head_seq = head
        scanned = 1 if seq == head else self._position(seq)
        self._pending.append((seq, -1))
        return live.pop(seq)[1], scanned

    def entries(self):
        for _key, entry in self._live.values():
            yield entry


class _Mailbox:
    """Matching queues of a single rank."""

    __slots__ = ("posted", "unexpected", "wildcards_posted")

    def __init__(self) -> None:
        self.posted = _MatchQueue()
        self.unexpected = _MatchQueue()
        #: Whether a wildcard receive was ever posted to this mailbox; while
        #: false, an arriving message only probes its exact key.
        self.wildcards_posted = False


def _copy_payload(buffer: np.ndarray, payload: np.ndarray) -> None:
    """Byte-wise copy of ``payload`` into the start of ``buffer``."""
    nbytes = payload.nbytes
    if nbytes == 0:
        return
    if buffer.nbytes < nbytes:
        raise MatchingError(
            f"receive buffer of {buffer.nbytes} bytes is too small for a {nbytes}-byte message"
        )
    if buffer.dtype is payload.dtype and buffer.ndim == 1 and payload.ndim == 1:
        # Same element type, flat views (the all-to-all common case): one
        # strided element copy delivers the same bytes as the uint8 path.
        buffer[: payload.shape[0]] = payload
        return
    dst_bytes = buffer.reshape(-1).view(np.uint8)
    src_bytes = payload.reshape(-1).view(np.uint8)
    dst_bytes[:nbytes] = src_bytes
    # ``buffer`` is a view into the receiver's array, so the write above is
    # already visible to the receiving rank; nothing else to do.


def _matches(recv_source: int, recv_tag: int, recv_ctx: int, send: _InboundSend) -> bool:
    if recv_ctx != send.context_id:
        return False
    if recv_source != ANY_SOURCE and recv_source != send.src:
        return False
    if recv_tag != ANY_TAG and recv_tag != send.tag:
        return False
    return True


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------


class MessageRouter:
    """Owns every rank's matching queues and applies the timing model."""

    def __init__(
        self,
        timing: TimingModel,
        *,
        trace: TraceRecorder | None = None,
        traffic: ThroughputTracker | None = None,
        sink=None,
    ) -> None:
        self.timing = timing
        self.params = timing.params
        self.trace = trace
        #: Optional :class:`repro.obs.sink.EventSink` receiving the matching
        #: lifecycle; ``None`` costs one pointer test per emission point.
        self.sink = sink
        self.traffic = traffic if traffic is not None else ThroughputTracker(name="p2p")
        pmap = timing.pmap
        #: The folded process map when the job is symmetry-folded, ``None``
        #: otherwise.  The unfolded hot path pays exactly one pointer test.
        self._fold = pmap if pmap.is_folded else None
        self._sim_nprocs = pmap.sim_nprocs
        self._mailboxes = [_Mailbox() for _ in range(pmap.sim_nprocs)]
        self._eager_limit = self.params.eager_limit
        self._match_overhead = self.params.match_overhead_per_entry
        self._recv_overhead = self.params.recv_overhead
        self._half_rendezvous = 0.5 * self.params.rendezvous_overhead
        # Direct probe into the process map's pair-locality memo (one lookup
        # per simulated message); misses fall back to the computing path.
        self._level_of = timing.pmap._pair_locality.get
        # Timing-model fields replicated for the inlined eager network path.
        self._nics = timing.nics
        self._node_of = timing._node_of
        self._nic_message_overhead = timing._nic_message_overhead
        self._injection_bandwidth = timing._injection_bandwidth
        self._nic_scale = timing._nic_scale
        self._net_latency = timing._latency[LocalityLevel.NETWORK]
        self._net_byte_time = timing._byte_time[LocalityLevel.NETWORK]
        #: Inter-node fabric state shared with the timing model (``None`` for
        #: the full-bisection default: one attribute test keeps the inlined
        #: eager path free of any fabric arithmetic).
        self._fabric = timing.fabric
        #: Matching statistics: total completed matches and the total number
        #: of queue entries charged to the matching-cost model.  Tests use
        #: them to pin the indexed scanned counts to the linear-scan oracle.
        self.matches = 0
        self.entries_scanned = 0
        #: Matching-lifecycle metrics (surfaced via ``JobResult.metrics``):
        #: a *fast-path* match found a posted receive waiting when the
        #: message arrived; a *queued* match had to sit in the unexpected
        #: queue until a later receive claimed it.
        self.fast_path_matches = 0
        self.queued_matches = 0
        self.unexpected_parked = 0
        self.max_unexpected_depth = 0
        self.wildcard_receives = 0
        #: Linear-scan lengths of wildcard receives that probed the
        #: unexpected queue (rare path; feeds the wildcard-scan histogram).
        self.wildcard_scan_lengths: list[int] = []

    # -- posting ------------------------------------------------------------
    def post_send(
        self,
        src: int,
        dst: int,
        payload: np.ndarray,
        tag: int,
        context_id: int,
        ready_time: float,
    ) -> Request:
        """Post a send whose data is ready at simulated ``ready_time``."""
        if self._fold is not None and dst >= self._sim_nprocs:
            return self._post_send_folded(src, dst, payload, tag, context_id, ready_time)
        request = Request("send", src)
        nbytes = payload.nbytes
        timing = self.timing
        level = self._level_of((src, dst))
        if level is None:
            level = timing.pmap.locality(src, dst)
        # Inlined ThroughputTracker.record (one call per simulated message);
        # the per-level counts are mutable pairs here so the steady state is
        # two in-place increments, consumers normalise with tuple().
        traffic = self.traffic
        traffic.messages += 1
        traffic.total_bytes += nbytes
        counts = traffic.per_key.get(level)
        if counts is None:
            traffic.per_key[level] = [1, nbytes]
        else:
            counts[0] += 1
            counts[1] += nbytes
        sink = self.sink
        if sink is not None:
            sink.send_posted(src, dst, nbytes, tag, ready_time)

        mailbox = self._mailboxes[dst]
        key = (context_id, src, tag)
        if nbytes <= self._eager_limit:
            if level is LocalityLevel.NETWORK:
                # Inlined TimingModel.transfer network path (the vast
                # majority of messages in a multi-node job): identical
                # arithmetic and NIC accounting, no call overhead.
                occupancy = self._nic_message_overhead + nbytes / self._injection_bandwidth
                nic_scale = self._nic_scale
                if nic_scale is not None:
                    occupancy *= nic_scale[self._node_of[src]]
                nic = self._nics[self._node_of[src]]
                available = nic.available_at
                start = ready_time if ready_time >= available else available
                sender_done = start + occupancy
                nic.available_at = sender_done
                nic.busy_time += occupancy
                nic.reservations += 1
                if sink is not None:
                    sink.nic(self._node_of[src], ready_time, start, sender_done, nbytes)
                fabric = self._fabric
                if fabric is None:
                    arrival = sender_done + self._net_latency + nbytes * self._net_byte_time
                else:
                    exit_time = fabric.traverse(
                        self._node_of[src], self._node_of[dst], nbytes, sender_done
                    )
                    arrival = exit_time + self._net_latency + nbytes * self._net_byte_time
            else:
                sender_done, arrival, level = timing.transfer(src, dst, nbytes, ready_time, level)
            # Inlined Request.complete: the request was created above, so no
            # waiter or callback can be registered yet and sender_done >= 0.
            request.completion_time = sender_done

            # Inlined _match_posted (one probe per simulated message).
            posted = mailbox.posted
            if not posted._live:
                found = None
            elif mailbox.wildcards_posted:
                seq = posted.first_for_keys((
                    key,
                    (context_id, ANY_SOURCE, tag),
                    (context_id, src, ANY_TAG),
                    (context_id, ANY_SOURCE, ANY_TAG),
                ))
                found = None if seq is None else posted.take(seq)
            else:
                found = posted.take_for_key(key)
            if found is not None:
                # Matched in the same event cascade as the send: the sending
                # rank is still suspended inside post_send, so its buffer
                # cannot have been reused yet — copy straight into the
                # receive buffer, the message's only copy.  No _InboundSend
                # record exists on this path; the whole eager completion of
                # _complete_match is inlined here, same order, same floats.
                recv = found[0]
                scanned = found[1]
                self.matches += 1
                self.fast_path_matches += 1
                self.entries_scanned += scanned
                post_time = recv.post_time
                later = arrival if arrival >= post_time else post_time  # max()
                completion = later + scanned * self._match_overhead + self._recv_overhead
                buffer = recv.buffer
                if buffer.dtype is payload.dtype and buffer.ndim == 1 \
                        and payload.ndim == 1 and buffer.nbytes >= nbytes:
                    n = payload.shape[0]
                    if n:
                        buffer[:n] = payload
                else:
                    _copy_payload(buffer, payload)
                recv_request = recv.request
                recv_request.completion_time = completion
                recv_request.status = Status(src, tag, nbytes)
                waiter = recv_request.waiter
                if waiter is not None:
                    recv_request.waiter = None
                    waiter.notify()
                callbacks = recv_request._callbacks
                if callbacks is not None:
                    recv_request._callbacks = None
                    for callback in callbacks:
                        callback(recv_request)
                if sink is not None:
                    sink.matched(src, dst, nbytes, tag, True, arrival, completion)
                if self.trace is not None:
                    self.trace.record(
                        MessageRecord(
                            source=src, dest=dst, nbytes=nbytes, level=level,
                            tag=tag, context_id=context_id, post_time=ready_time,
                            arrival_time=arrival, completion_time=completion,
                        )
                    )
                return request
            # The message has to wait for a future receive; snapshot the
            # payload so the sender may reuse its buffer (buffered-send
            # semantics).
            unexpected = mailbox.unexpected
            unexpected.append(key, _InboundSend(
                request, src, dst, tag, context_id, nbytes,
                np.array(payload.reshape(-1), copy=True),
                "eager", arrival, ready_time, ready_time, level,
            ))
            self.unexpected_parked += 1
            depth = len(unexpected._live)
            if depth > self.max_unexpected_depth:
                self.max_unexpected_depth = depth
            if sink is not None:
                sink.parked(src, dst, nbytes, tag, arrival, depth)
            return request

        # Rendezvous: the data transfer is priced at match time, so the
        # in-flight record is built either way.
        rts_arrival = ready_time + self._half_rendezvous + timing.control_latency(level)
        inbound = _InboundSend(
            request, src, dst, tag, context_id, nbytes, payload,
            "rndv", rts_arrival, ready_time, ready_time, level,
        )
        found = self._match_posted(mailbox, key, context_id, src, tag)
        if found is not None:
            recv = found[0]
            self._complete_match(inbound, recv.request, recv.buffer,
                                 recv.post_time, found[1], fast_path=True)
            return request
        inbound.payload = np.array(payload.reshape(-1), copy=True)
        unexpected = mailbox.unexpected
        unexpected.append(key, inbound)
        self.unexpected_parked += 1
        depth = len(unexpected._live)
        if depth > self.max_unexpected_depth:
            self.max_unexpected_depth = depth
        if sink is not None:
            sink.parked(src, dst, nbytes, tag, rts_arrival, depth)
        return request

    def _post_send_folded(
        self,
        src: int,
        dst: int,
        payload: np.ndarray,
        tag: int,
        context_id: int,
        ready_time: float,
    ) -> Request:
        """Post a representative's send to a *phantom* destination.

        Folded jobs simulate only node 0; ``dst`` lives on a folded-out
        node.  The send is **timed** as the original ``src -> dst`` message
        — node 0's NIC injection, fabric traversal, network latency — so the
        sender-side costs are exactly those of the full run.  It is
        **delivered** as its mirror: the unique node-rotation of the pair
        that lands the destination back on node 0
        (:meth:`repro.machine.folding.FoldedProcessMap.mirror_inbound`).
        Under node-rotation symmetry the mirror is precisely the message the
        folded-out peer would have sent into node 0 at the same simulated
        times, which keeps node 0's inbound stream — matching order, queue
        depths, scanned counts — identical to the full run.

        The arithmetic below intentionally replays the eager network path of
        :meth:`post_send` float-for-float; only the delivery coordinates
        (mailbox, matching key, status source) use the mirror.
        """
        fold = self._fold
        request = Request("send", src)
        nbytes = payload.nbytes
        # Phantom destinations are on other nodes by construction.
        level = LocalityLevel.NETWORK
        traffic = self.traffic
        traffic.messages += 1
        traffic.total_bytes += nbytes
        counts = traffic.per_key.get(level)
        if counts is None:
            traffic.per_key[level] = [1, nbytes]
        else:
            counts[0] += 1
            counts[1] += nbytes
        sink = self.sink
        if sink is not None:
            sink.send_posted(src, dst, nbytes, tag, ready_time)

        mirror_src, mirror_dst = fold.mirror_inbound(src, dst)
        mailbox = self._mailboxes[mirror_dst]
        key = (context_id, mirror_src, tag)
        if nbytes <= self._eager_limit:
            occupancy = self._nic_message_overhead + nbytes / self._injection_bandwidth
            nic_scale = self._nic_scale
            if nic_scale is not None:
                occupancy *= nic_scale[self._node_of[src]]
            nic = self._nics[self._node_of[src]]
            available = nic.available_at
            start = ready_time if ready_time >= available else available
            sender_done = start + occupancy
            nic.available_at = sender_done
            nic.busy_time += occupancy
            nic.reservations += 1
            if sink is not None:
                sink.nic(self._node_of[src], ready_time, start, sender_done, nbytes)
            fabric = self._fabric
            if fabric is None:
                arrival = sender_done + self._net_latency + nbytes * self._net_byte_time
            else:
                exit_time = fabric.traverse(
                    self._node_of[src], self._node_of[dst], nbytes, sender_done
                )
                arrival = exit_time + self._net_latency + nbytes * self._net_byte_time
            request.completion_time = sender_done

            posted = mailbox.posted
            if not posted._live:
                found = None
            elif mailbox.wildcards_posted:
                seq = posted.first_for_keys((
                    key,
                    (context_id, ANY_SOURCE, tag),
                    (context_id, mirror_src, ANY_TAG),
                    (context_id, ANY_SOURCE, ANY_TAG),
                ))
                found = None if seq is None else posted.take(seq)
            else:
                found = posted.take_for_key(key)
            if found is not None:
                recv = found[0]
                scanned = found[1]
                self.matches += 1
                self.fast_path_matches += 1
                self.entries_scanned += scanned
                post_time = recv.post_time
                later = arrival if arrival >= post_time else post_time  # max()
                completion = later + scanned * self._match_overhead + self._recv_overhead
                buffer = recv.buffer
                if buffer.dtype is payload.dtype and buffer.ndim == 1 \
                        and payload.ndim == 1 and buffer.nbytes >= nbytes:
                    n = payload.shape[0]
                    if n:
                        buffer[:n] = payload
                else:
                    _copy_payload(buffer, payload)
                recv_request = recv.request
                recv_request.completion_time = completion
                recv_request.status = Status(mirror_src, tag, nbytes)
                waiter = recv_request.waiter
                if waiter is not None:
                    recv_request.waiter = None
                    waiter.notify()
                callbacks = recv_request._callbacks
                if callbacks is not None:
                    recv_request._callbacks = None
                    for callback in callbacks:
                        callback(recv_request)
                if sink is not None:
                    sink.matched(mirror_src, mirror_dst, nbytes, tag, True,
                                 arrival, completion)
                if self.trace is not None:
                    self.trace.record(
                        MessageRecord(
                            source=mirror_src, dest=mirror_dst, nbytes=nbytes,
                            level=level, tag=tag, context_id=context_id,
                            post_time=ready_time, arrival_time=arrival,
                            completion_time=completion,
                        )
                    )
                return request
            unexpected = mailbox.unexpected
            unexpected.append(key, _InboundSend(
                request, mirror_src, mirror_dst, tag, context_id, nbytes,
                np.array(payload.reshape(-1), copy=True),
                "eager", arrival, ready_time, ready_time, level,
            ))
            self.unexpected_parked += 1
            depth = len(unexpected._live)
            if depth > self.max_unexpected_depth:
                self.max_unexpected_depth = depth
            if sink is not None:
                sink.parked(mirror_src, mirror_dst, nbytes, tag, arrival, depth)
            return request

        # Rendezvous: parked/matched under the mirror identity; the data
        # transfer is priced at match time on the original pair (see
        # _complete_match), so node 0's NIC sees exactly the reservations of
        # the full run.
        rts_arrival = ready_time + self._half_rendezvous + self._net_latency
        inbound = _InboundSend(
            request, mirror_src, mirror_dst, tag, context_id, nbytes, payload,
            "rndv", rts_arrival, ready_time, ready_time, level,
        )
        found = self._match_posted(mailbox, key, context_id, mirror_src, tag)
        if found is not None:
            recv = found[0]
            self._complete_match(inbound, recv.request, recv.buffer,
                                 recv.post_time, found[1], fast_path=True)
            return request
        inbound.payload = np.array(payload.reshape(-1), copy=True)
        unexpected = mailbox.unexpected
        unexpected.append(key, inbound)
        self.unexpected_parked += 1
        depth = len(unexpected._live)
        if depth > self.max_unexpected_depth:
            self.max_unexpected_depth = depth
        if sink is not None:
            sink.parked(mirror_src, mirror_dst, nbytes, tag, rts_arrival, depth)
        return request

    def _match_posted(self, mailbox: _Mailbox, key: tuple, context_id: int,
                      src: int, tag: int):
        """Earliest posted receive matching an arriving message (or ``None``)."""
        posted = mailbox.posted
        if not posted._live:
            return None
        if mailbox.wildcards_posted:
            seq = posted.first_for_keys((
                key,
                (context_id, ANY_SOURCE, tag),
                (context_id, src, ANY_TAG),
                (context_id, ANY_SOURCE, ANY_TAG),
            ))
            return None if seq is None else posted.take(seq)
        return posted.take_for_key(key)

    def post_recv(
        self,
        owner: int,
        source_spec: int,
        buffer: np.ndarray,
        tag_spec: int,
        context_id: int,
        post_time: float,
    ) -> Request:
        """Post a receive at simulated ``post_time``."""
        request = Request("recv", owner)
        sink = self.sink
        if sink is not None:
            sink.recv_posted(owner, source_spec, tag_spec, post_time)
        mailbox = self._mailboxes[owner]
        unexpected = mailbox.unexpected
        wildcard = source_spec == ANY_SOURCE or tag_spec == ANY_TAG
        if wildcard:
            self.wildcard_receives += 1
        if unexpected._live:
            if not wildcard:
                found = unexpected.take_for_key((context_id, source_spec, tag_spec))
            else:
                seq = unexpected.first_matching(
                    lambda send: _matches(source_spec, tag_spec, context_id, send)
                )
                found = None if seq is None else unexpected.take(seq)
                if found is not None:
                    self.wildcard_scan_lengths.append(found[1])
            if found is not None:
                # No _PostedRecv record is needed: the receive never enters
                # a queue, its identity lives entirely in this match.
                self._complete_match(found[0], request, buffer, post_time, found[1],
                                     fast_path=False)
                return request
        if wildcard:
            mailbox.wildcards_posted = True
        mailbox.posted.append(
            (context_id, source_spec, tag_spec),
            _PostedRecv(request, owner, source_spec, tag_spec, context_id, buffer, post_time),
        )
        return request

    # -- internal ------------------------------------------------------------
    def _complete_match(self, inbound: _InboundSend, recv_request: Request,
                        buffer: np.ndarray, post_time: float, scanned: int,
                        *, fast_path: bool) -> None:
        self.matches += 1
        if fast_path:
            self.fast_path_matches += 1
        else:
            self.queued_matches += 1
        self.entries_scanned += scanned
        match_cost = scanned * self._match_overhead
        ready_time = inbound.ready_time
        later = ready_time if ready_time >= post_time else post_time  # max(), inlined
        if inbound.protocol == "eager":
            completion = later + match_cost + self._recv_overhead
            arrival = ready_time
        else:
            handshake = later + match_cost
            clear_to_send = handshake + self._half_rendezvous \
                + self.timing.control_latency(inbound.level)
            data_start = max(inbound.sender_ready, clear_to_send)
            src = inbound.src
            fold = self._fold
            if fold is not None and src >= self._sim_nprocs:
                # Mirrored rendezvous: price the data transfer as the
                # original representative send it stands in for.  Every
                # mirrored transfer corresponds 1:1 (at identical times,
                # by node-rotation symmetry) to one representative send,
                # so routing them all through node 0's NIC reproduces the
                # full run's NIC schedule exactly.
                src, dst = fold.mirror_outbound(src, inbound.dst)
            else:
                dst = inbound.dst
            sender_done, arrival, _ = self.timing.transfer(
                src, dst, inbound.nbytes, data_start, inbound.level
            )
            inbound.request.complete(sender_done)
            completion = arrival + self._recv_overhead
        payload = inbound.payload
        if buffer.dtype is payload.dtype and buffer.ndim == 1 and payload.ndim == 1 \
                and buffer.nbytes >= payload.nbytes:
            # Inlined _copy_payload fast path (flat views, same dtype).
            n = payload.shape[0]
            if n:
                buffer[:n] = payload
        else:
            _copy_payload(buffer, payload)
        # Inlined Request.complete for the receive: a matched posted receive
        # completes exactly once and completion >= 0 by construction; the
        # waiter (if the receiving rank is already blocked) fires first,
        # then any registered callbacks — the same order complete() keeps.
        recv_request.completion_time = completion
        recv_request.status = Status(inbound.src, inbound.tag, inbound.nbytes)
        waiter = recv_request.waiter
        if waiter is not None:
            recv_request.waiter = None
            waiter.notify()
        callbacks = recv_request._callbacks
        if callbacks is not None:
            recv_request._callbacks = None
            for callback in callbacks:
                callback(recv_request)
        sink = self.sink
        if sink is not None:
            sink.matched(inbound.src, inbound.dst, inbound.nbytes, inbound.tag,
                         fast_path, arrival, completion)
        if self.trace is not None:
            self.trace.record(
                MessageRecord(
                    source=inbound.src, dest=inbound.dst, nbytes=inbound.nbytes,
                    level=inbound.level, tag=inbound.tag, context_id=inbound.context_id,
                    post_time=inbound.post_time, arrival_time=arrival,
                    completion_time=completion,
                )
            )

    # -- diagnostics -----------------------------------------------------------
    def pending_summary(self, max_per_rank: int = 8) -> list[str]:
        """Describe outstanding queue entries (used in deadlock reports).

        At most ``max_per_rank`` entries are described per rank — a deadlocked
        all-to-all can hold O(P) entries per mailbox, and the report exists to
        orient a human, not to dump the queues.
        """
        lines = []
        for rank, mailbox in enumerate(self._mailboxes):
            shown = 0
            for posted in mailbox.posted.entries():
                if shown < max_per_rank:
                    lines.append(
                        f"rank {rank}: posted recv waiting for source={posted.source_spec} "
                        f"tag={posted.tag_spec} ctx={posted.context_id}"
                    )
                shown += 1
            for inbound in mailbox.unexpected.entries():
                if shown < max_per_rank:
                    lines.append(
                        f"rank {rank}: unexpected message from {inbound.src} "
                        f"tag={inbound.tag} ctx={inbound.context_id} ({inbound.nbytes} bytes)"
                    )
                shown += 1
            if shown > max_per_rank:
                lines.append(f"rank {rank}: ... and {shown - max_per_rank} more queue entries")
        return lines

    def has_pending(self) -> bool:
        return any(m.posted or m.unexpected for m in self._mailboxes)
