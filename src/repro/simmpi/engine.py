"""The SPMD engine: runs one rank program per simulated process.

A *rank program* is a generator function ``program(ctx, *args, **kwargs)``
that yields :mod:`repro.simmpi.ops` operations (usually indirectly, through
``yield from comm.<operation>(...)``).  The engine drives all programs over
a shared :class:`~repro.netsim.simulator.Simulator`, charging communication
costs from the machine model, and returns a :class:`JobResult` with per-rank
results and the simulated elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommunicatorError, DeadlockError, SimulationError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.process_map import ProcessMap
from repro.netsim.simulator import Simulator
from repro.netsim.trace import TraceRecorder
from repro.simmpi.datatypes import PROC_NULL
from repro.simmpi.ops import Delay, LocalCopy, PostRecv, PostSend, Wait
from repro.simmpi.p2p import MessageRouter, TimingModel
from repro.simmpi.request import Request
from repro.simmpi.status import Status

__all__ = ["ContextIdAllocator", "RankContext", "JobResult", "SpmdEngine", "run_spmd"]


class ContextIdAllocator:
    """Deterministic communicator-context allocation.

    Every communicator is identified by a context id so that messages from
    different communicators never match each other.  Ids are assigned by the
    member set (plus a split sequence number), so all ranks constructing the
    same communicator — in any order — obtain the same id without
    communication.
    """

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self._next = 1  # id 0 is reserved for the world communicator

    def world_context(self) -> int:
        return 0

    def context_for(self, key: tuple) -> int:
        """Return (allocating on first use) the context id for ``key``."""
        if key not in self._ids:
            self._ids[key] = self._next
            self._next += 1
        return self._ids[key]


@dataclass
class _RankProcess:
    rank: int
    generator: Any
    local_time: float = 0.0
    state: str = "ready"  # ready | running | waiting | done | failed
    finish_time: float | None = None
    waiting_desc: str = ""


class RankContext:
    """Per-rank view of the job handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this process.
    pmap:
        The :class:`~repro.machine.ProcessMap` the job runs on.
    world:
        The world :class:`~repro.simmpi.comm.Communicator`.
    result:
        Slot for the program to deposit its result; collected into
        :attr:`JobResult.results`.
    timings:
        Free-form dictionary used by instrumented algorithms to report phase
        durations (e.g. ``{"gather": 1.2e-4}``); collected into
        :attr:`JobResult.phase_timings`.
    """

    __slots__ = ("rank", "pmap", "world", "result", "timings", "_process", "_engine")

    def __init__(self, rank: int, pmap: ProcessMap, engine: "SpmdEngine") -> None:
        self.rank = rank
        self.pmap = pmap
        self.world = None  # set by the engine once the world communicator exists
        self.result: Any = None
        self.timings: dict[str, float] = {}
        self._process: _RankProcess | None = None
        self._engine = engine

    # -- identity helpers --------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.pmap.nprocs

    @property
    def node(self) -> int:
        return self.pmap.node_of(self.rank)

    @property
    def local_rank(self) -> int:
        return self.pmap.local_rank(self.rank)

    @property
    def now(self) -> float:
        """Current simulated time of this rank."""
        if self._process is None:
            return 0.0
        return self._process.local_time

    def add_timing(self, phase: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into the named phase."""
        self.timings[phase] = self.timings.get(phase, 0.0) + elapsed


@dataclass
class JobResult:
    """Outcome of one simulated SPMD job."""

    #: Per-rank values deposited in ``ctx.result``.
    results: list[Any]
    #: Per-rank simulated completion time of the rank program.
    finish_times: list[float]
    #: Simulated wall-clock of the job (max over ranks).
    elapsed: float
    #: Per-rank phase timing dictionaries (``ctx.timings``).
    phase_timings: list[dict[str, float]]
    #: Message/byte counts per locality level.
    traffic_by_level: dict[LocalityLevel, tuple[int, int]]
    #: Optional full message trace (``None`` unless requested).
    trace: TraceRecorder | None
    #: Per-node NIC accounting.
    nic_statistics: list[dict]
    #: Number of discrete events processed.
    events_processed: int

    def phase_time(self, phase: str, *, reduce: Callable[[Sequence[float]], float] = max) -> float:
        """Aggregate one named phase across ranks (default: max over ranks)."""
        values = [t.get(phase, 0.0) for t in self.phase_timings]
        if not values:
            return 0.0
        return float(reduce(values))

    def phases(self) -> list[str]:
        names: list[str] = []
        for timings in self.phase_timings:
            for name in timings:
                if name not in names:
                    names.append(name)
        return names


class SpmdEngine:
    """Runs rank programs over a simulated machine."""

    def __init__(
        self,
        pmap: ProcessMap,
        *,
        record_trace: bool = False,
        max_events: int = 200_000_000,
    ) -> None:
        self.pmap = pmap
        self.params = pmap.params
        self.simulator = Simulator(max_events=max_events)
        self.timing = TimingModel(pmap)
        self.trace = TraceRecorder() if record_trace else None
        self.router = MessageRouter(self.timing, trace=self.trace)
        self.contexts = ContextIdAllocator()
        self._processes: list[_RankProcess] = []
        self._rank_contexts: list[RankContext] = []
        self._finished = 0

    # -- public API ---------------------------------------------------------
    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> JobResult:
        """Run ``program(ctx, *args, **kwargs)`` on every rank and simulate to completion."""
        # Imported here to avoid a circular import at module load time.
        from repro.simmpi.comm import Communicator

        if self._processes:
            raise SimulationError("an SpmdEngine can only run a single job; create a new engine")

        nprocs = self.pmap.nprocs
        world_group = tuple(range(nprocs))
        for rank in range(nprocs):
            ctx = RankContext(rank, self.pmap, self)
            ctx.world = Communicator(
                allocator=self.contexts,
                world_ranks=world_group,
                my_world_rank=rank,
                context_id=self.contexts.world_context(),
            )
            generator = program(ctx, *args, **kwargs)
            if not hasattr(generator, "send"):
                raise SimulationError(
                    "rank programs must be generator functions (use 'yield from' for "
                    "communication); got a plain function returning "
                    f"{type(generator).__name__}"
                )
            process = _RankProcess(rank=rank, generator=generator)
            ctx._process = process
            self._rank_contexts.append(ctx)
            self._processes.append(process)

        for process in self._processes:
            self.simulator.schedule_at(0.0, partial(self._step, process, None))

        self.simulator.run()
        self._check_completion()
        return self._build_result()

    # -- process stepping -----------------------------------------------------
    def _step(self, process: _RankProcess, send_value: Any) -> None:
        process.local_time = self.simulator.now
        process.state = "running"
        try:
            operation = process.generator.send(send_value)
        except StopIteration:
            process.state = "done"
            process.finish_time = process.local_time
            self._finished += 1
            return
        self._dispatch(process, operation)

    def _dispatch(self, process: _RankProcess, operation: Any) -> None:
        now = process.local_time
        params = self.params
        if isinstance(operation, PostSend):
            if operation.dest == PROC_NULL:
                request = Request("send", process.rank)
                request.complete(now)
                self.simulator.schedule_at(now, partial(self._step, process, request))
                return
            ready = now + params.send_overhead
            request = self.router.post_send(
                process.rank, operation.dest, operation.payload, operation.tag,
                operation.context_id, ready,
            )
            self.simulator.schedule_at(ready, partial(self._step, process, request))
        elif isinstance(operation, PostRecv):
            if operation.source == PROC_NULL:
                request = Request("recv", process.rank)
                request.complete(now, Status(source=PROC_NULL, tag=operation.tag, nbytes=0))
                self.simulator.schedule_at(now, partial(self._step, process, request))
                return
            post_time = now + params.send_overhead
            request = self.router.post_recv(
                process.rank, operation.source, operation.buffer, operation.tag,
                operation.context_id, post_time,
            )
            self.simulator.schedule_at(post_time, partial(self._step, process, request))
        elif isinstance(operation, Wait):
            self._handle_wait(process, list(operation.requests))
        elif isinstance(operation, Delay):
            if operation.seconds < 0.0:
                raise SimulationError(f"negative delay {operation.seconds}")
            self.simulator.schedule_at(now + operation.seconds, partial(self._step, process, None))
        elif isinstance(operation, LocalCopy):
            nbytes = int(operation.source.nbytes)
            _copy_local(operation.dest, operation.source)
            done = now + params.copy_time(nbytes)
            self.simulator.schedule_at(done, partial(self._step, process, None))
        else:
            raise SimulationError(
                f"rank {process.rank} yielded an unknown operation {operation!r}; "
                "did a rank program 'yield' a value instead of 'yield from' a comm call?"
            )

    def _handle_wait(self, process: _RankProcess, requests: list[Request]) -> None:
        issue_time = process.local_time
        if not requests:
            self.simulator.schedule_at(issue_time, partial(self._step, process, []))
            return

        def _resume() -> None:
            resume_time = max([issue_time] + [r.completion_time for r in requests])
            statuses = [r.status for r in requests]
            process.state = "ready"
            self.simulator.schedule_at(resume_time, partial(self._step, process, statuses))

        pending = [r for r in requests if not r.completed]
        if not pending:
            _resume()
            return

        process.state = "waiting"
        process.waiting_desc = (
            f"waiting on {len(pending)} of {len(requests)} requests "
            f"({', '.join(r.kind for r in pending[:8])}{'...' if len(pending) > 8 else ''})"
        )
        remaining = {"count": len(pending)}

        def _on_complete(_req: Request) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                _resume()

        for request in pending:
            request.on_complete(_on_complete)

    # -- completion ---------------------------------------------------------
    def _check_completion(self) -> None:
        unfinished = [p for p in self._processes if p.state != "done"]
        if not unfinished:
            return
        lines = [
            f"rank {p.rank}: state={p.state} t={p.local_time:.3e} {p.waiting_desc}"
            for p in unfinished[:32]
        ]
        lines.extend(self.router.pending_summary()[:32])
        raise DeadlockError(
            f"{len(unfinished)} of {len(self._processes)} ranks never finished; "
            "the simulated program deadlocked:\n  " + "\n  ".join(lines)
        )

    def _build_result(self) -> JobResult:
        finish_times = [p.finish_time if p.finish_time is not None else 0.0 for p in self._processes]
        traffic = {
            level: tuple(counts) for level, counts in self.router.traffic.per_key.items()
        }
        return JobResult(
            results=[ctx.result for ctx in self._rank_contexts],
            finish_times=finish_times,
            elapsed=max(finish_times) if finish_times else 0.0,
            phase_timings=[dict(ctx.timings) for ctx in self._rank_contexts],
            traffic_by_level=traffic,
            trace=self.trace,
            nic_statistics=self.timing.nic_statistics(),
            events_processed=self.simulator.events_processed,
        )


def _copy_local(dest: np.ndarray, source: np.ndarray) -> None:
    if dest.nbytes < source.nbytes:
        raise CommunicatorError(
            f"local copy destination of {dest.nbytes} bytes is smaller than the "
            f"{source.nbytes}-byte source"
        )
    dest_bytes = dest.reshape(-1).view(np.uint8)
    src_bytes = source.reshape(-1).view(np.uint8)
    dest_bytes[: source.nbytes] = src_bytes


def run_spmd(
    pmap: ProcessMap,
    program: Callable[..., Any],
    *args: Any,
    record_trace: bool = False,
    **kwargs: Any,
) -> JobResult:
    """Convenience wrapper: build an engine, run ``program`` on every rank, return the result."""
    engine = SpmdEngine(pmap, record_trace=record_trace)
    return engine.run(program, *args, **kwargs)
