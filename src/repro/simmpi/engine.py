"""The SPMD engine: runs one rank program per simulated process.

A *rank program* is a generator function ``program(ctx, *args, **kwargs)``
that yields :mod:`repro.simmpi.ops` operations (usually indirectly, through
``yield from comm.<operation>(...)``).  The engine drives all programs over
a shared :class:`~repro.netsim.simulator.Simulator`, charging communication
costs from the machine model, and returns a :class:`JobResult` with per-rank
results and the simulated elapsed time.

The stepping path is deliberately allocation-lean: operations dispatch on
their concrete class, continuations are scheduled as ``(fn, args)`` heap
entries on the simulator heap (no per-step ``functools.partial``), and a blocked
``Wait`` is represented by a single counter-based :class:`_WaitState`
instead of a callback list per request.  Diagnostics stay off the hot path:
the description of what a rank is waiting on is derived lazily, only when a
deadlock report is actually built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommunicatorError, DeadlockError, SimulationError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.process_map import ProcessMap
from repro.netsim.simulator import Simulator
from repro.netsim.trace import TraceRecorder
from repro.obs.metrics import build_job_metrics
from repro.obs.sink import EventSink
from repro.simmpi.datatypes import PROC_NULL
from repro.simmpi.ops import Delay, LocalCopy, PostRecv, PostSend, Wait
from repro.simmpi.p2p import MessageRouter, TimingModel
from repro.simmpi.request import Request
from repro.simmpi.status import Status

__all__ = ["ContextIdAllocator", "RankContext", "JobResult", "SpmdEngine", "run_spmd"]


class ContextIdAllocator:
    """Deterministic communicator-context allocation.

    Every communicator is identified by a context id so that messages from
    different communicators never match each other.  Ids are assigned by the
    member set (plus a split sequence number), so all ranks constructing the
    same communicator — in any order — obtain the same id without
    communication.
    """

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self._next = 1  # id 0 is reserved for the world communicator
        self._groups: dict[tuple, Any] = {}

    def world_context(self) -> int:
        return 0

    def context_for(self, key: tuple) -> int:
        """Return (allocating on first use) the context id for ``key``."""
        if key not in self._ids:
            self._ids[key] = self._next
            self._next += 1
        return self._ids[key]

    def group_for(self, world_ranks: tuple):
        """Shared immutable :class:`~repro.simmpi.group.Group` for ``world_ranks``.

        Every member rank of a communicator builds it from the same rank
        tuple; validating and materialising the group once per distinct
        tuple (instead of once per member) removes an O(P^2) setup cost
        from every job.
        """
        group = self._groups.get(world_ranks)
        if group is None:
            from repro.simmpi.group import Group

            group = Group(world_ranks)
            self._groups[world_ranks] = group
        return group


class _RankProcess:
    """Book-keeping of one simulated rank's generator."""

    __slots__ = ("rank", "generator", "resume", "local_time", "state", "finish_time",
                 "waiting_on", "sim")

    def __init__(self, rank: int, generator: Any) -> None:
        self.rank = rank
        self.generator = generator
        #: ``generator.send`` bound once — the engine resumes the rank on
        #: every step, and rebinding the method per step costs an allocation.
        self.resume = generator.send
        self.local_time = 0.0
        self.state = "ready"  # ready | waiting | done
        self.finish_time: float | None = None
        #: The requests of the ``Wait`` this rank is blocked on (``None``
        #: while runnable).  Only read when a deadlock report is built.
        self.waiting_on: Sequence[Request] | None = None
        #: The :class:`~repro.netsim.simulator.Simulator` whose heap this
        #: rank's continuations land on.  The serial engine points every
        #: process at its single simulator; the parallel engine points each
        #: process at its node partition's simulator.
        self.sim: Simulator | None = None

    def waiting_desc(self) -> str:
        """Lazy description of the blocked wait (deadlock reports only)."""
        requests = self.waiting_on
        if not requests:
            return ""
        pending = [r for r in requests if not r.completed]
        kinds = ", ".join(r.kind for r in pending[:8])
        suffix = "..." if len(pending) > 8 else ""
        return f"waiting on {len(pending)} of {len(requests)} requests ({kinds}{suffix})"


class _WaitState:
    """Counter-based rendezvous between a blocked rank and its requests.

    One instance per blocking ``Wait``; every pending request points back at
    it through ``request.waiter``.  The last completion schedules the rank's
    resume step — no per-request callback lists, no closures.
    """

    __slots__ = ("engine", "process", "requests", "issue_time", "remaining")

    def __init__(self, engine: "SpmdEngine", process: _RankProcess,
                 requests: Sequence[Request], issue_time: float) -> None:
        self.engine = engine
        self.process = process
        self.requests = requests
        self.issue_time = issue_time
        self.remaining = 0

    def notify(self) -> None:
        remaining = self.remaining - 1
        self.remaining = remaining
        if remaining == 0:
            engine = self.engine
            process = self.process
            requests = self.requests
            resume_time = self.issue_time
            statuses = []
            for request in requests:
                completion = request.completion_time
                if completion > resume_time:
                    resume_time = completion
                statuses.append(request.status)
            process.state = "ready"
            process.waiting_on = None
            sink = engine.sink
            if sink is not None:
                sink.wait(process.rank, self.issue_time, resume_time, len(requests))
            # Every request completes at or after the current simulated time,
            # so resume_time >= now and the direct heap push (see _schedule
            # note in SpmdEngine._step) is safe.  The push targets the
            # *owning* process's simulator: under the parallel engine this is
            # the only site where executing one partition schedules work on
            # another, so the lookahead guard (a no-op ``None`` on the serial
            # engine) checks the conservative-PDES invariant here.
            guard = engine._lookahead_guard
            if guard is not None:
                guard(process, resume_time)
            simulator = process.sim
            seq = simulator._next_seq
            simulator._next_seq = seq + 1
            heappush(simulator._heap, (resume_time, seq, engine._bound_step, process, statuses))


class RankContext:
    """Per-rank view of the job handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this process.
    pmap:
        The :class:`~repro.machine.ProcessMap` the job runs on.
    world:
        The world :class:`~repro.simmpi.comm.Communicator`.
    result:
        Slot for the program to deposit its result; collected into
        :attr:`JobResult.results`.
    timings:
        Free-form dictionary used by instrumented algorithms to report phase
        durations (e.g. ``{"gather": 1.2e-4}``); collected into
        :attr:`JobResult.phase_timings`.
    """

    __slots__ = ("rank", "pmap", "world", "result", "timings", "_process", "_engine")

    def __init__(self, rank: int, pmap: ProcessMap, engine: "SpmdEngine") -> None:
        self.rank = rank
        self.pmap = pmap
        self.world = None  # set by the engine once the world communicator exists
        self.result: Any = None
        self.timings: dict[str, float] = {}
        self._process: _RankProcess | None = None
        self._engine = engine

    # -- identity helpers --------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.pmap.nprocs

    @property
    def node(self) -> int:
        return self.pmap.node_of(self.rank)

    @property
    def local_rank(self) -> int:
        return self.pmap.local_rank(self.rank)

    @property
    def now(self) -> float:
        """Current simulated time of this rank."""
        if self._process is None:
            return 0.0
        return self._process.local_time

    def add_timing(self, phase: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into the named phase."""
        self.timings[phase] = self.timings.get(phase, 0.0) + elapsed

    def record_span(self, name: str, start: float, stop: float) -> None:
        """Attribute the ``[start, stop]`` interval to phase ``name``.

        Accumulates into :attr:`timings` like :meth:`add_timing` and, when
        the engine carries an event sink, also emits the interval as a
        phase span so it shows up on the rank track of an exported
        timeline.  This is the primitive behind
        :class:`repro.core.instrumentation.PhaseRecorder` and the
        phase-boundary markers of phased (multi-exchange) runs.
        """
        self.add_timing(name, stop - start)
        sink = self._engine.sink
        if sink is not None:
            sink.phase(self.rank, name, start, stop)


@dataclass
class JobResult:
    """Outcome of one simulated SPMD job."""

    #: Per-rank values deposited in ``ctx.result``.
    results: list[Any]
    #: Per-rank simulated completion time of the rank program.
    finish_times: list[float]
    #: Simulated wall-clock of the job (max over ranks).
    elapsed: float
    #: Per-rank phase timing dictionaries (``ctx.timings``).
    phase_timings: list[dict[str, float]]
    #: Message/byte counts per locality level.
    traffic_by_level: dict[LocalityLevel, tuple[int, int]]
    #: Optional full message trace (``None`` unless requested).
    trace: TraceRecorder | None
    #: Per-node NIC accounting.
    nic_statistics: list[dict]
    #: Number of discrete events processed.
    events_processed: int
    #: Per-link inter-node fabric accounting (empty for full bisection).
    fabric_statistics: list[dict] = field(default_factory=list)
    #: Nested metrics snapshot (:func:`repro.obs.metrics.build_job_metrics`):
    #: matching fast-path/queued splits, unexpected-queue depth, traffic,
    #: NIC and fabric-link occupancy, engine event counts.  Always populated.
    metrics: dict = field(default_factory=dict)
    #: Symmetry-folding metadata (``None`` for unfolded jobs): multiplicity,
    #: logical vs simulated rank counts and the fold certificate.  When set,
    #: per-rank lists (results, finish times, phase timings) cover only the
    #: representative ranks, and :attr:`traffic_by_level` is already scaled
    #: to the logical full-machine totals.
    fold: dict | None = None

    def phase_time(self, phase: str, *, reduce: Callable[[Sequence[float]], float] = max) -> float:
        """Aggregate one named phase across ranks (default: max over ranks)."""
        values = [t.get(phase, 0.0) for t in self.phase_timings]
        if not values:
            return 0.0
        return float(reduce(values))

    def phases(self) -> list[str]:
        names: list[str] = []
        for timings in self.phase_timings:
            for name in timings:
                if name not in names:
                    names.append(name)
        return names


class SpmdEngine:
    """Runs rank programs over a simulated machine."""

    def __init__(
        self,
        pmap: ProcessMap,
        *,
        record_trace: bool = False,
        sink: "EventSink | None" = None,
        max_events: int = 200_000_000,
        faults=None,
    ) -> None:
        self.pmap = pmap
        self.params = pmap.params
        self.simulator = Simulator(max_events=max_events)
        #: Optional :class:`repro.obs.sink.EventSink` observing the job's
        #: simulated lifecycle.  ``None`` (the default) keeps every hot-path
        #: emission point down to a single pointer test; attaching a sink
        #: never changes the simulated arithmetic (see docs/OBSERVABILITY.md).
        self.sink = sink
        #: Active :class:`repro.faults.FaultSpec`; empty specs normalise to
        #: ``None`` so the healthy machine pays one pointer test per site.
        self.faults = faults if faults else None
        if self.faults is not None and pmap.is_folded:
            raise SimulationError(
                "fault injection is incompatible with symmetry folding: "
                "faults break the node-rotation symmetry the fold relies on "
                "(run with fold='off')"
            )
        self.timing = TimingModel(pmap, sink=sink, faults=self.faults)
        self.trace = TraceRecorder() if record_trace else None
        self.router = MessageRouter(self.timing, trace=self.trace, sink=sink)
        self.contexts = ContextIdAllocator()
        self._processes: list[_RankProcess] = []
        self._rank_contexts: list[RankContext] = []
        self._finished = 0
        params = self.params
        self._send_overhead = params.send_overhead
        #: One shared bound method for continuation heap entries — pushing
        #: ``self._step`` directly would allocate a fresh bound method per
        #: scheduled event.
        self._bound_step = self._step
        self._copy_latency = params.copy_latency
        self._copy_bandwidth = params.copy_bandwidth
        #: Per-rank OS-noise jitter streams, or ``None`` (the default): the
        #: healthy posting path pays one pointer test per operation.
        self._noise = None
        if self.faults is not None:
            amplitude = self.faults.noise_amplitude()
            if amplitude > 0.0:
                from repro.faults.apply import OsNoiseState

                self._noise = OsNoiseState(amplitude, self.faults.seed)
        #: Hook checked on cross-process wakeups (``_WaitState.notify``).
        #: ``None`` on the serial engine — one pointer test per wait
        #: completion; the parallel engine installs its lookahead-invariant
        #: checker here.
        self._lookahead_guard: Callable[[_RankProcess, float], None] | None = None

    # -- public API ---------------------------------------------------------
    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> JobResult:
        """Run ``program(ctx, *args, **kwargs)`` on every rank and simulate to completion."""
        if self._processes:
            raise SimulationError("an SpmdEngine can only run a single job; create a new engine")
        self._spawn(program, *args, **kwargs)
        self._drive()
        self._check_completion()
        return self._build_result()

    # -- job setup -----------------------------------------------------------
    def _spawn(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Instantiate one rank program per simulated process and schedule step 0.

        The initial steps are scheduled in rank order through each process's
        owning simulator (:meth:`_sim_for`); with the serial engine's single
        simulator this is exactly the historical schedule, and the parallel
        engine's shared sequence counter preserves the identical global
        ``(time, seq)`` keys.
        """
        # Imported here to avoid a circular import at module load time.
        from repro.simmpi.comm import Communicator

        nprocs = self.pmap.nprocs
        world_group = self.contexts.group_for(tuple(range(nprocs)))
        # Folded maps schedule only the representative ranks (node 0); each
        # stands in for its whole equivalence class.  Unfolded maps have
        # sim_nprocs == nprocs and this is the plain every-rank loop.
        for rank in range(self.pmap.sim_nprocs):
            ctx = RankContext(rank, self.pmap, self)
            ctx.world = Communicator(
                allocator=self.contexts,
                world_ranks=world_group,
                my_world_rank=rank,
                context_id=self.contexts.world_context(),
            )
            generator = program(ctx, *args, **kwargs)
            if not hasattr(generator, "send"):
                raise SimulationError(
                    "rank programs must be generator functions (use 'yield from' for "
                    "communication); got a plain function returning "
                    f"{type(generator).__name__}"
                )
            process = _RankProcess(rank, generator)
            process.sim = self._sim_for(process)
            ctx._process = process
            self._rank_contexts.append(ctx)
            self._processes.append(process)

        for process in self._processes:
            process.sim.schedule_call(0.0, self._bound_step, process, None)

    def _sim_for(self, process: _RankProcess) -> Simulator:
        """The simulator owning ``process``'s events (partition hook)."""
        return self.simulator

    def _drive(self) -> None:
        """Execute events until every queue drains (overridden in parallel)."""
        self.simulator.run()

    # -- process stepping -----------------------------------------------------
    def _step(self, process: _RankProcess, send_value: Any) -> None:
        """Advance one rank: resume its generator, dispatch the yielded operation.

        This is the hottest function in the simulator; the operation dispatch
        is inlined here (one class test per operation kind) and every
        continuation is scheduled directly as a ``(fn, args)`` heap entry.
        """
        # Continuations below are pushed straight onto the simulator's heap:
        # every scheduled time is `now` plus a non-negative cost (overheads,
        # delays, completion times), so the past-scheduling guard of
        # Simulator.schedule_call can never fire on these paths and its call
        # overhead is spared on every step.  External callers keep the
        # guarded entry point.
        # No per-step state write: "running" can never be observed (deadlock
        # reports only exist once the event queue has drained, and a rank is
        # then ready, waiting or done).
        simulator = process.sim
        process.local_time = now = simulator._now
        try:
            operation = process.resume(send_value)
        except StopIteration:
            process.state = "done"
            process.finish_time = now
            self._finished += 1
            return

        cls = operation.__class__
        if cls is PostSend:
            if operation.dest == PROC_NULL:
                request = Request("send", process.rank)
                request.complete(now)
                when = now
            else:
                noise = self._noise
                if noise is None:
                    when = now + self._send_overhead
                else:
                    when = now + self._send_overhead + noise.draw(process.rank)
                request = self.router.post_send(
                    process.rank, operation.dest, operation.payload, operation.tag,
                    operation.context_id, when,
                )
        elif cls is PostRecv:
            if operation.source == PROC_NULL:
                request = Request("recv", process.rank)
                request.complete(now, Status(source=PROC_NULL, tag=operation.tag, nbytes=0))
                when = now
            else:
                noise = self._noise
                if noise is None:
                    when = now + self._send_overhead
                else:
                    when = now + self._send_overhead + noise.draw(process.rank)
                request = self.router.post_recv(
                    process.rank, operation.source, operation.buffer, operation.tag,
                    operation.context_id, when,
                )
        elif cls is Wait:
            # Inlined _handle_wait (one Wait per exchange step).
            requests = operation.requests
            state = None
            remaining = 0
            for request in requests:
                if request.completion_time is None:
                    if state is None:
                        state = _WaitState(self, process, requests, now)
                    if request.waiter is not state:
                        request.waiter = state
                        remaining += 1
            if state is None:
                # Everything already completed: resume at the latest
                # completion (>= now, so the direct heap push is safe).
                resume_time = now
                statuses: list = []
                for request in requests:
                    completion = request.completion_time
                    if completion > resume_time:
                        resume_time = completion
                    statuses.append(request.status)
                process.state = "ready"
                sink = self.sink
                if sink is not None:
                    sink.wait(process.rank, now, resume_time, len(requests))
                seq = simulator._next_seq
                simulator._next_seq = seq + 1
                heappush(simulator._heap,
                         (resume_time, seq, self._bound_step, process, statuses))
                return
            state.remaining = remaining
            process.state = "waiting"
            process.waiting_on = requests
            return
        elif cls is Delay:
            seconds = operation.seconds
            if seconds < 0.0:
                raise SimulationError(f"negative delay {seconds}")
            when = now + seconds
            request = None
        elif cls is LocalCopy:
            source = operation.source
            nbytes = source.nbytes
            _copy_local(operation.dest, source)
            if nbytes == 0:
                when = now
            else:
                # Grouped like MachineParameters.copy_time so the float result
                # is bit-identical to the pre-inlined `now + copy_time(nbytes)`.
                when = now + (self._copy_latency + nbytes / self._copy_bandwidth)
            request = None
        else:
            raise SimulationError(
                f"rank {process.rank} yielded an unknown operation {operation!r}; "
                "did a rank program 'yield' a value instead of 'yield from' a comm call?"
            )
        seq = simulator._next_seq
        simulator._next_seq = seq + 1
        heappush(simulator._heap, (when, seq, self._bound_step, process, request))


    # -- completion ---------------------------------------------------------
    def _check_completion(self) -> None:
        unfinished = [p for p in self._processes if p.state != "done"]
        if not unfinished:
            return
        lines = [
            f"rank {p.rank}: state={p.state} t={p.local_time:.3e} {p.waiting_desc()}"
            for p in unfinished[:32]
        ]
        lines.extend(self.router.pending_summary()[:32])
        raise DeadlockError(
            f"{len(unfinished)} of {len(self._processes)} ranks never finished; "
            "the simulated program deadlocked:\n  " + "\n  ".join(lines)
        )

    def _build_result(self) -> JobResult:
        finish_times = [p.finish_time if p.finish_time is not None else 0.0 for p in self._processes]
        pmap = self.pmap
        fold_info = None
        if pmap.is_folded:
            # Every node contributes the same counts under node-rotation
            # symmetry, so the logical full-machine traffic is exactly the
            # representatives' traffic times the class multiplicity.
            multiplicity = pmap.multiplicity
            traffic = {
                level: (counts[0] * multiplicity, counts[1] * multiplicity)
                for level, counts in self.router.traffic.per_key.items()
            }
            certificate = getattr(pmap, "certificate", None)
            fold_info = {
                "multiplicity": multiplicity,
                "logical_ranks": pmap.nprocs,
                "simulated_ranks": pmap.sim_nprocs,
                "kind": certificate.kind if certificate is not None else "unspecified",
                "certificate": certificate.detail if certificate is not None else "",
            }
        else:
            traffic = {
                level: tuple(counts) for level, counts in self.router.traffic.per_key.items()
            }
        return JobResult(
            results=[ctx.result for ctx in self._rank_contexts],
            finish_times=finish_times,
            elapsed=max(finish_times) if finish_times else 0.0,
            phase_timings=[dict(ctx.timings) for ctx in self._rank_contexts],
            traffic_by_level=traffic,
            trace=self.trace,
            nic_statistics=self.timing.nic_statistics(),
            events_processed=self.simulator.events_processed,
            fabric_statistics=self.timing.fabric_statistics(),
            metrics=build_job_metrics(self),
            fold=fold_info,
        )


def _copy_local(dest: np.ndarray, source: np.ndarray) -> None:
    nbytes = source.nbytes
    if dest.nbytes < nbytes:
        raise CommunicatorError(
            f"local copy destination of {dest.nbytes} bytes is smaller than the "
            f"{nbytes}-byte source"
        )
    if nbytes == 0:
        return
    dest_bytes = dest.reshape(-1).view(np.uint8)
    src_bytes = source.reshape(-1).view(np.uint8)
    dest_bytes[:nbytes] = src_bytes


def run_spmd(
    pmap: ProcessMap,
    program: Callable[..., Any],
    *args: Any,
    record_trace: bool = False,
    sink: EventSink | None = None,
    engine_jobs: int = 1,
    faults=None,
    **kwargs: Any,
) -> JobResult:
    """Convenience wrapper: build an engine, run ``program`` on every rank, return the result.

    ``engine_jobs`` > 1 selects the conservative-lookahead parallel engine
    (:class:`repro.simmpi.parallel.ParallelSpmdEngine`), which partitions
    ranks by node across that many workers and produces bit-identical
    simulated timings.  ``faults`` is an optional
    :class:`repro.faults.FaultSpec`; every fault model only ever delays
    traffic, so the parallel engine's conservative lookahead stays sound
    and faulted runs are bit-identical at any worker count too.
    """
    if engine_jobs < 1:
        raise SimulationError(f"engine_jobs must be >= 1, got {engine_jobs}")
    if engine_jobs > 1:
        # Imported lazily: the serial hot path never pays for threading.
        from repro.simmpi.parallel import ParallelSpmdEngine

        engine: SpmdEngine = ParallelSpmdEngine(
            pmap, workers=engine_jobs, record_trace=record_trace, sink=sink,
            faults=faults,
        )
    else:
        engine = SpmdEngine(pmap, record_trace=record_trace, sink=sink, faults=faults)
    return engine.run(program, *args, **kwargs)
