"""Conservative-lookahead parallel SPMD engine (bit-identical to serial).

Partitions simulated ranks by node into per-partition event queues (one
:class:`~repro.netsim.simulator.Simulator` heap each) driven by worker
threads, and synchronizes them with the classic conservative-PDES recipe:
a partition may only advance while no other partition holds an earlier
event, and no cross-partition interaction can take effect sooner than the
machine's lookahead floor (NIC injection overhead, plus wire latency and
the fabric's cheapest route for data arrivals — see
:meth:`repro.simmpi.p2p.TimingModel.lookahead`).

Bit-identity is the hard constraint here (the golden timing fixture, the
verify corpus and the fold gate all pin simulated floats), and it shapes
the synchronization protocol.  This engine's MPI matching is
*synchronous*: executing a send mutates the destination mailbox at send
time, Fenwick ``scanned`` counts feed match overheads into completion
floats, and fabric link reservations are order-dependent FIFO.  Replaying
any two events out of their serial order therefore changes floats, so the
engine runs an **exact deterministic K-way merge**: all partitions share
one global sequence counter (events keep the identical ``(time, seq)``
keys the serial engine would assign), and the worker whose queue holds
the globally minimal key executes — exclusively — until another
partition's head becomes minimal, then hands the turn over.  By induction
the event order, and hence every simulated float, is identical to the
serial engine's.  The lookahead floor is enforced as a runtime invariant
on every cross-partition wakeup (the only point where one partition
schedules work on another): a wakeup earlier than ``now`` plus the NIC
injection floor would mean the conservative window was unsound, and the
engine raises instead of silently diverging.
"""

from __future__ import annotations

import math
import threading
from heapq import heappop

from repro.errors import SimulationError
from repro.machine.process_map import ProcessMap
from repro.netsim.simulator import Simulator
from repro.obs.sink import EventSink
from repro.simmpi.engine import SpmdEngine, _RankProcess

__all__ = ["ParallelSpmdEngine"]


class _SharedSeqSimulator(Simulator):
    """A :class:`Simulator` whose sequence counter is shared across partitions.

    Sequence numbers break ties in the ``(time, seq, fn, a, b)`` heap keys.
    Sharing one counter between all partition simulators makes every event's
    key *globally* unique and — because events are executed in global key
    order — identical to the key the serial engine would have assigned.
    That shared counter is the whole bit-identity argument: the merge of the
    partition heaps is then exactly the serial heap.

    The parent class stores ``_next_seq`` in a slot; the property below
    shadows that slot descriptor (subclass dict wins in the MRO), so every
    parent-code read/write of ``self._next_seq`` — including the
    ``_next_seq = 0`` in ``Simulator.__init__`` — lands in the shared cell.
    """

    __slots__ = ("_shared_seq",)

    def __init__(self, shared_seq: list, *, max_events: int) -> None:
        # Must be bound before super().__init__(), which zeroes _next_seq
        # through the shadowing property.
        self._shared_seq = shared_seq
        super().__init__(max_events=max_events)

    @property
    def _next_seq(self) -> int:
        return self._shared_seq[0]

    @_next_seq.setter
    def _next_seq(self, value: int) -> None:
        self._shared_seq[0] = value


class _MergedSimulatorView:
    """Read-only aggregate over the partition simulators.

    Presents the subset of the :class:`Simulator` surface the result
    builder and metrics layer consume (``events_processed``, ``now``,
    ``pending_events``) so downstream code never needs to know whether a
    job ran serially or partitioned.
    """

    __slots__ = ("_sims",)

    def __init__(self, sims: list[Simulator]) -> None:
        self._sims = sims

    @property
    def events_processed(self) -> int:
        return sum(sim._processed for sim in self._sims)

    @property
    def now(self) -> float:
        return max(sim._now for sim in self._sims)

    @property
    def pending_events(self) -> int:
        return sum(len(sim._heap) for sim in self._sims)


class ParallelSpmdEngine(SpmdEngine):
    """Drives one simulated job over node-partitioned event queues.

    ``workers`` caps the partition count; the effective count is
    ``min(workers, sim_nodes)`` (a folded job simulates one node and
    degenerates to a single partition).  Nodes map to partitions
    contiguously and near-evenly (node ``n`` of ``N`` goes to partition
    ``n * K // N``), and every rank follows its node, so intra-node
    traffic — the overwhelming majority under hierarchical algorithms —
    never crosses a partition boundary.
    """

    def __init__(
        self,
        pmap: ProcessMap,
        *,
        workers: int,
        record_trace: bool = False,
        sink: "EventSink | None" = None,
        max_events: int = 200_000_000,
        faults=None,
    ) -> None:
        if workers < 1:
            raise SimulationError(f"parallel engine workers must be >= 1, got {workers}")
        # Fault models only ever delay traffic (degraded/flapping links,
        # stragglers, non-negative noise), so the conservative lookahead
        # floors below remain valid lower bounds under injection.
        super().__init__(pmap, record_trace=record_trace, sink=sink,
                         max_events=max_events, faults=faults)
        sim_nodes = pmap.sim_nodes
        self.workers = workers
        count = min(workers, sim_nodes)
        self.partitions = count
        self._max_events = max_events
        shared_seq = [0]
        self._sims: list[Simulator] = [
            _SharedSeqSimulator(shared_seq, max_events=max_events) for _ in range(count)
        ]
        self._node_partition = [node * count // sim_nodes for node in range(sim_nodes)]
        #: Replaces the parent's single simulator for everything downstream
        #: (result building, metrics); per-event scheduling goes through
        #: ``process.sim`` and never touches this view.
        self.simulator = _MergedSimulatorView(self._sims)
        #: Conservative cross-node data-arrival window (documented bound).
        self.lookahead = self.timing.lookahead()
        #: Runtime-guarded floor: sender-side rendezvous completions are
        #: only bounded by the NIC injection overhead, not the full
        #: data-arrival lookahead (see TimingModel.lookahead).
        self._notify_floor = self.params.nic_message_overhead
        #: Cross-partition wakeups observed (reported via job metrics).
        self.cross_notifications = 0
        self._lookahead_guard = self._check_lookahead
        self._active = 0
        self._others = [
            [(q, self._sims[q]) for q in range(count) if q != p] for p in range(count)
        ]
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(count)]
        self._turn = -1
        self._stop = False
        self._failure: BaseException | None = None
        self._processed_total = 0

    # -- partition bookkeeping ----------------------------------------------
    def _sim_for(self, process: _RankProcess) -> Simulator:
        return self._sims[self._node_partition[self.pmap.node_of(process.rank)]]

    @property
    def partition_clocks(self) -> list[float]:
        """Current simulated time of each partition (metrics surface)."""
        return [sim._now for sim in self._sims]

    @property
    def partition_events(self) -> list[int]:
        """Events executed by each partition (metrics surface)."""
        return [sim._processed for sim in self._sims]

    # -- lookahead invariant -------------------------------------------------
    def _check_lookahead(self, process: _RankProcess, resume_time: float) -> None:
        """Validate a wakeup pushed from the active partition onto another.

        Installed as ``engine._lookahead_guard`` and called from
        ``_WaitState.notify`` — the single site where executing one
        partition's event schedules work on another partition's queue.  A
        cross-partition wakeup always involves two distinct nodes (a
        partition is a union of whole nodes), so its completion went
        through NIC injection and can never precede ``now`` plus the
        injection floor.  If it does, the conservative window was unsound
        and silently diverging timings would follow — fail loudly instead.
        """
        active = self._sims[self._active]
        if process.sim is active:
            return
        self.cross_notifications += 1
        floor = active._now + self._notify_floor
        if resume_time < floor:
            tolerance = max(1e-18, 4.0 * math.ulp(floor))
            if resume_time < floor - tolerance:
                raise SimulationError(
                    "lookahead invariant violated: cross-partition wakeup of rank "
                    f"{process.rank} at t={resume_time!r} precedes the active "
                    f"partition's clock {active._now!r} plus the injection floor "
                    f"{self._notify_floor!r}"
                )

    # -- drive loop -----------------------------------------------------------
    def _drive(self) -> None:
        if self.partitions == 1:
            # One partition (single node or folded job): no synchronization
            # to pay for; the plain serial run loop is the same merge.
            self._sims[0].run()
            return
        first = self._min_partition()
        if first is None:
            return
        self._turn = first
        threads = [
            threading.Thread(
                target=self._worker, args=(p,), name=f"sim-partition-{p}", daemon=True
            )
            for p in range(self.partitions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        failure = self._failure
        if failure is not None:
            raise failure

    def _min_partition(self) -> int | None:
        """Partition holding the globally minimal event key (None if all empty)."""
        best_key = None
        best = None
        for p, sim in enumerate(self._sims):
            heap = sim._heap
            if heap:
                key = heap[0]
                if best_key is None or key < best_key:
                    best_key = key
                    best = p
        return best

    def _worker(self, p: int) -> None:
        """Worker thread for partition ``p``: wait for the turn, execute, pass on.

        The turn token (``self._turn``) is the only state a sleeping worker
        reads, and it is only written under the lock — so spurious
        condition wakeups are harmless and no worker ever reads a heap
        while another thread mutates it.  The turn holder runs lock-free:
        every other worker is parked on its condition variable.
        """
        lock = self._lock
        cond = self._conds[p]
        try:
            while True:
                with lock:
                    while self._turn != p and not self._stop:
                        cond.wait()
                    if self._stop:
                        return
                next_partition = self._run_turn(p)
                with lock:
                    if self._stop:
                        return
                    if next_partition is None:
                        self._stop = True
                        for other in self._conds:
                            other.notify_all()
                        return
                    self._turn = next_partition
                    self._conds[next_partition].notify()
        except BaseException as failure:  # propagate to _drive, release peers
            with lock:
                if self._failure is None:
                    self._failure = failure
                self._stop = True
                for other in self._conds:
                    other.notify_all()

    def _run_turn(self, p: int) -> int | None:
        """Execute partition ``p``'s events while it holds the global minimum.

        Returns the partition to hand the turn to (the new global-minimum
        holder), or ``None`` when every queue has drained.  Runs without
        the lock: only the turn holder touches heaps, and its pushes onto
        *other* partitions' heaps (cross-partition wakeups) are safe
        because those workers are parked.
        """
        sim = self._sims[p]
        heap = sim._heap
        others = self._others[p]
        self._active = p
        max_events = self._max_events
        processed = self._processed_total
        local = sim._processed
        try:
            while True:
                # Global-minimum check: heads only change through this
                # thread (pops from `heap`, cross-partition pushes), so the
                # scan is exact, not a stale snapshot.  Tuple comparison
                # settles at the unique shared seq — callables in slot 2
                # are never compared.
                best_key = None
                owner = None
                for q, other in others:
                    other_heap = other._heap
                    if other_heap:
                        key = other_heap[0]
                        if best_key is None or key < best_key:
                            best_key = key
                            owner = q
                if not heap:
                    return owner
                if best_key is not None and best_key < heap[0]:
                    return owner
                time, _seq, fn, a, b = heappop(heap)
                sim._now = time
                processed += 1
                local += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "likely a livelock in the simulated program"
                    )
                fn(a, b)
        finally:
            self._processed_total = processed
            sim._processed = local
