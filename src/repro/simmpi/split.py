"""Topology-derived communicator layouts.

The hierarchical, node-aware, locality-aware and multi-leader all-to-all
algorithms all operate on sub-communicators derived from the process
placement: "all ranks on my node", "the ranks of my aggregation group",
"one rank per node with my local rank", and so on.  Because the placement
is known to every rank (it is a deterministic function of the process map),
these communicators can be constructed without any communication; this
module centralises that construction so every algorithm uses identical
definitions.

Terminology (matching the paper):

``node_comm``
    All ranks on the calling rank's node (size = processes per node).
``local_comm`` (a.k.a. the aggregation group / leader group)
    The ``procs_per_group`` consecutive local ranks containing the caller.
    With ``procs_per_group == ppn`` this degenerates to ``node_comm``.
``group_comm``
    One rank from every aggregation group in the job, chosen so that all
    members occupy the same position within their group (Algorithm 4's
    inter-region communicator).  With one group per node this is "all ranks
    with my local rank", the classic node-aware communicator.
``cross_node_comm``
    One rank per node with the caller's node-local rank (Algorithm 5's
    inter-node communicator for leaders).
``node_leaders_comm``
    The leaders (first rank of each aggregation group) of the caller's node
    (Algorithm 5's ``leader_group_comm``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.utils.partition import validate_group_size

__all__ = [
    "CommLayout",
    "node_comm",
    "local_group_comm",
    "cross_group_comm",
    "cross_node_comm",
    "node_leaders_comm",
    "build_comm_layout",
]


def node_comm(ctx: RankContext) -> Communicator:
    """Communicator of all ranks on the caller's node."""
    ranks = ctx.pmap.ranks_on_node(ctx.node)
    return ctx.world.create_subcomm(ranks, key=("node", ctx.node))


def local_group_comm(ctx: RankContext, procs_per_group: int) -> Communicator:
    """Communicator of the caller's aggregation group (``procs_per_group`` consecutive local ranks)."""
    validate_group_size(ctx.pmap.ppn, procs_per_group)
    group_index = ctx.local_rank // procs_per_group
    groups = ctx.pmap.leader_groups(ctx.node, procs_per_group)
    ranks = groups[group_index]
    return ctx.world.create_subcomm(ranks, key=("local-group", procs_per_group, ctx.node, group_index))


def cross_group_comm(ctx: RankContext, procs_per_group: int) -> Communicator:
    """Communicator of all ranks occupying the caller's position within their group.

    This is Algorithm 4's ``group_comm``: its size equals the total number of
    aggregation groups in the job (``nprocs / procs_per_group``), with exactly
    one member per group.
    """
    validate_group_size(ctx.pmap.ppn, procs_per_group)
    position = ctx.local_rank % procs_per_group
    ranks = []
    for node in range(ctx.pmap.num_nodes):
        for group in ctx.pmap.leader_groups(node, procs_per_group):
            ranks.append(group[position])
    return ctx.world.create_subcomm(ranks, key=("cross-group", procs_per_group, position))


def cross_node_comm(ctx: RankContext) -> Communicator:
    """Communicator of one rank per node sharing the caller's node-local rank."""
    ranks = ctx.pmap.ranks_with_local_rank(ctx.local_rank)
    return ctx.world.create_subcomm(ranks, key=("cross-node", ctx.local_rank))


def node_leaders_comm(ctx: RankContext, procs_per_leader: int) -> Communicator:
    """Communicator of the leaders (first rank of each group) on the caller's node.

    Only meaningful for callers that *are* leaders; other ranks may still
    construct it (the communicator is defined by the node, not the caller)
    but are not members and will get a :class:`CommunicatorError` — callers
    should only build it when ``ctx.local_rank % procs_per_leader == 0``.
    """
    validate_group_size(ctx.pmap.ppn, procs_per_leader)
    groups = ctx.pmap.leader_groups(ctx.node, procs_per_leader)
    leaders = [group[0] for group in groups]
    return ctx.world.create_subcomm(leaders, key=("node-leaders", procs_per_leader, ctx.node))


@dataclass
class CommLayout:
    """Bundle of the communicators used by the all-to-all algorithm family."""

    #: The world communicator of the job.
    world: Communicator
    #: All ranks on the caller's node.
    node: Communicator
    #: The caller's aggregation group (size ``procs_per_group``).
    local: Communicator
    #: One member of every aggregation group (Algorithm 4's ``group_comm``).
    cross_group: Communicator
    #: One rank per node with the caller's node-local rank.
    cross_node: Communicator
    #: Aggregation group size the layout was built for.
    procs_per_group: int

    @property
    def ppn(self) -> int:
        return self.node.size

    @property
    def num_nodes(self) -> int:
        return self.cross_node.size

    @property
    def groups_per_node(self) -> int:
        return self.ppn // self.procs_per_group


def build_comm_layout(ctx: RankContext, procs_per_group: int | None = None) -> CommLayout:
    """Construct the full :class:`CommLayout` for a given aggregation group size.

    ``procs_per_group`` defaults to the whole node (one group per node),
    which yields the communicators used by the standard hierarchical and
    node-aware algorithms.
    """
    ppn = ctx.pmap.ppn
    if procs_per_group is None:
        procs_per_group = ppn
    if procs_per_group > ppn:
        raise ConfigurationError(
            f"procs_per_group={procs_per_group} exceeds the {ppn} processes per node"
        )
    return CommLayout(
        world=ctx.world,
        node=node_comm(ctx),
        local=local_group_comm(ctx, procs_per_group),
        cross_group=cross_group_comm(ctx, procs_per_group),
        cross_node=cross_node_comm(ctx),
        procs_per_group=procs_per_group,
    )
