"""Process groups: ordered sets of world ranks.

A :class:`Group` is the static part of a communicator — the list of world
ranks that belong to it and the translation between group-local ranks and
world ranks.  Groups are value objects (hashable, immutable) so they can be
compared and reused freely when building the per-node / per-leader
communicator layouts of the hierarchical algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import CommunicatorError

__all__ = ["Group"]


@dataclass(frozen=True)
class Group:
    """An ordered, duplicate-free tuple of world ranks."""

    world_ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        ranks = tuple(int(r) for r in self.world_ranks)
        if len(ranks) == 0:
            raise CommunicatorError("a group must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise CommunicatorError(f"group contains duplicate ranks: {ranks}")
        if any(r < 0 for r in ranks):
            raise CommunicatorError(f"group contains negative ranks: {ranks}")
        object.__setattr__(self, "world_ranks", ranks)

    @classmethod
    def from_ranks(cls, ranks: Iterable[int]) -> "Group":
        return cls(tuple(ranks))

    # -- size / membership -------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def __len__(self) -> int:
        return len(self.world_ranks)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self.world_ranks

    def __iter__(self):
        return iter(self.world_ranks)

    # -- rank translation ----------------------------------------------------
    def rank_of(self, world_rank: int) -> int:
        """Group-local rank of ``world_rank`` (raises if not a member)."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            raise CommunicatorError(f"world rank {world_rank} is not in group {self.world_ranks}") from None

    def world_rank(self, local_rank: int) -> int:
        """World rank of group-local ``local_rank``."""
        if not 0 <= local_rank < self.size:
            raise CommunicatorError(f"local rank {local_rank} out of range for group of size {self.size}")
        return self.world_ranks[local_rank]

    def translate(self, local_ranks: Sequence[int]) -> list[int]:
        """Translate several group-local ranks to world ranks."""
        return [self.world_rank(r) for r in local_ranks]

    # -- set operations ------------------------------------------------------
    def intersection(self, other: "Group") -> "Group":
        common = [r for r in self.world_ranks if r in other]
        return Group(tuple(common))

    def union(self, other: "Group") -> "Group":
        merged = list(self.world_ranks) + [r for r in other.world_ranks if r not in self]
        return Group(tuple(merged))

    def difference(self, other: "Group") -> "Group":
        remaining = [r for r in self.world_ranks if r not in other]
        return Group(tuple(remaining))
