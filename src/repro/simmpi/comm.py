"""Simulated MPI communicators.

A :class:`Communicator` is a per-rank object (like an ``MPI_Comm`` handle):
it knows the ordered set of world ranks that belong to it, this rank's
position within that set, and a context id that isolates its traffic from
other communicators.  All communication methods are generator functions and
must be invoked with ``yield from`` inside a rank program::

    status = yield from comm.sendrecv(sbuf, dest, rbuf, source)
    yield from comm.alltoall(sendbuf, recvbuf)
    node_comm = yield from comm.split(color=my_node)

The communicator performs no simulation itself: it validates arguments,
translates communicator-local ranks to world ranks, and yields primitive
operations to the engine.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, PROC_NULL
from repro.simmpi.group import Group
from repro.simmpi.ops import PostRecv, PostSend, Wait
from repro.simmpi.request import Request
from repro.simmpi.status import Status
from repro.simmpi import collectives as _coll

__all__ = ["Communicator"]

_TAG_SPLIT = MAX_USER_TAG + 64


class Communicator:
    """Per-rank handle onto a group of simulated processes."""

    __slots__ = ("_allocator", "group", "context_id", "_my_world_rank", "rank",
                 "_world_ranks")

    def __init__(self, allocator, world_ranks: Sequence[int] | Group,
                 my_world_rank: int, context_id: int) -> None:
        self._allocator = allocator
        # Groups are immutable value objects: every member rank of a
        # communicator shares one instance (built once by the allocator)
        # instead of re-validating an identical tuple per rank.
        self.group = world_ranks if isinstance(world_ranks, Group) else Group(tuple(world_ranks))
        self._my_world_rank = my_world_rank
        self.context_id = context_id
        self.rank = self.group.rank_of(my_world_rank)
        self._world_ranks = self.group.world_ranks

    # -- basic queries -------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return self.group.size

    @property
    def world_rank(self) -> int:
        """World rank of the calling process."""
        return self._my_world_rank

    def world_rank_of(self, local_rank: int) -> int:
        """Translate a communicator-local rank to a world rank."""
        return self.group.world_rank(local_rank)

    def local_rank_of(self, world_rank: int) -> int:
        """Translate a world rank to a communicator-local rank."""
        return self.group.rank_of(world_rank)

    def _translate_dest(self, local_rank: int) -> int:
        if local_rank == PROC_NULL:
            return PROC_NULL
        ranks = self._world_ranks
        if 0 <= local_rank < len(ranks):
            return ranks[local_rank]
        return self.group.world_rank(local_rank)  # out of range: raises

    def _translate_source(self, local_rank: int) -> int:
        ranks = self._world_ranks
        if 0 <= local_rank < len(ranks):
            return ranks[local_rank]
        if local_rank == PROC_NULL or local_rank == ANY_SOURCE:
            return local_rank
        return self.group.world_rank(local_rank)  # out of range: raises

    @staticmethod
    def _check_buffer(buf: np.ndarray, name: str) -> np.ndarray:
        if not isinstance(buf, np.ndarray):
            raise CommunicatorError(f"{name} must be a numpy.ndarray, got {type(buf).__name__}")
        return buf

    # -- non-blocking point-to-point -------------------------------------------
    def isend(self, buf: np.ndarray, dest: int, tag: int = 0):
        """Post a non-blocking send of ``buf`` to ``dest``; resumes with a :class:`Request`."""
        self._check_buffer(buf, "send buffer")
        request = yield PostSend(self._translate_dest(dest), buf, tag, self.context_id)
        return request

    def irecv(self, buf: np.ndarray, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Post a non-blocking receive into ``buf``; resumes with a :class:`Request`."""
        self._check_buffer(buf, "receive buffer")
        request = yield PostRecv(self._translate_source(source), buf, tag, self.context_id)
        return request

    # -- waiting ----------------------------------------------------------------
    def wait(self, request: Request):
        """Wait for a single request; resumes with its :class:`Status` (``None`` for sends)."""
        statuses = yield Wait(requests=(request,))
        return statuses[0]

    def waitall(self, requests: Iterable[Request]):
        """Wait for all requests; resumes with the list of statuses."""
        statuses = yield Wait(requests=tuple(requests))
        return statuses

    # -- blocking point-to-point ---------------------------------------------------
    # The blocking/combined calls yield their primitive operations directly
    # instead of delegating to isend/irecv/wait with ``yield from``: the op
    # sequence is identical, but the per-call nested generator objects (three
    # per sendrecv — the hottest call in pairwise exchange) disappear.

    def send(self, buf: np.ndarray, dest: int, tag: int = 0):
        """Blocking send (post + wait)."""
        self._check_buffer(buf, "send buffer")
        request = yield PostSend(self._translate_dest(dest), buf, tag, self.context_id)
        yield Wait((request,))

    def recv(self, buf: np.ndarray, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; resumes with the :class:`Status`."""
        self._check_buffer(buf, "receive buffer")
        request = yield PostRecv(self._translate_source(source), buf, tag, self.context_id)
        statuses = yield Wait((request,))
        return statuses[0]

    def sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ):
        """Combined send and receive (the workhorse of pairwise exchange).

        The receive is posted before the send so two ranks exchanging with
        each other never deadlock, mirroring ``MPI_Sendrecv`` semantics.
        """
        self._check_buffer(recvbuf, "receive buffer")
        self._check_buffer(sendbuf, "send buffer")
        recv_req = yield PostRecv(self._translate_source(source), recvbuf, recvtag, self.context_id)
        send_req = yield PostSend(self._translate_dest(dest), sendbuf, sendtag, self.context_id)
        statuses = yield Wait((recv_req, send_req))
        return statuses[0]

    # -- collectives -------------------------------------------------------------
    def barrier(self):
        """Block until every rank of the communicator has entered the barrier."""
        yield from _coll.barrier(self)

    def bcast(self, buf: np.ndarray, root: int = 0):
        """Broadcast ``buf`` from ``root`` to all ranks (in place)."""
        yield from _coll.bcast(self, buf, root)

    def gather(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None, root: int = 0):
        """Gather equal-sized contributions into the root's ``recvbuf``."""
        yield from _coll.gather(self, sendbuf, recvbuf, root)

    def scatter(self, sendbuf: np.ndarray | None, recvbuf: np.ndarray, root: int = 0):
        """Scatter equal-sized blocks of the root's ``sendbuf`` to all ranks."""
        yield from _coll.scatter(self, sendbuf, recvbuf, root)

    def allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray):
        """Gather equal-sized contributions from every rank onto every rank."""
        yield from _coll.allgather(self, sendbuf, recvbuf)

    def reduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None, op: str = "sum", root: int = 0):
        """Element-wise reduction into the root's ``recvbuf``."""
        yield from _coll.reduce(self, sendbuf, recvbuf, op, root)

    def allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: str = "sum"):
        """Element-wise reduction delivered to every rank."""
        yield from _coll.allreduce(self, sendbuf, recvbuf, op)

    def alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray):
        """Flat pairwise-exchange all-to-all (see :mod:`repro.core.alltoall` for the full family)."""
        yield from _coll.alltoall(self, sendbuf, recvbuf)

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts,
        recvbuf: np.ndarray,
        recvcounts,
        sdispls=None,
        rdispls=None,
    ):
        """Variable-count all-to-all (``MPI_Alltoallv``).

        ``sendcounts[d]`` / ``recvcounts[s]`` give the per-peer item counts;
        displacements default to the packed layout (exclusive prefix sums of
        the counts).  Zero-count pairs exchange no message at all.
        """
        from repro.utils.buffers import displacements_from_counts

        if sdispls is None:
            sdispls = displacements_from_counts(sendcounts)
        if rdispls is None:
            rdispls = displacements_from_counts(recvcounts)
        yield from _coll.alltoallv(
            self, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls
        )

    # -- communicator construction ---------------------------------------------------
    def dup(self) -> "Communicator":
        """Duplicate this communicator with a fresh context id (non-collective here)."""
        return self.create_subcomm(self.group.world_ranks, key=("dup", self.context_id))

    def create_subcomm(self, world_ranks: Sequence[int], key: tuple | None = None) -> "Communicator":
        """Create a communicator over ``world_ranks`` without communication.

        Every member must call this with the *same* rank sequence (typically
        derived deterministically from the process map); the shared context
        allocator then hands out identical context ids on every rank.
        """
        ranks = tuple(int(r) for r in world_ranks)
        if self._my_world_rank not in ranks:
            raise CommunicatorError(
                f"rank {self._my_world_rank} cannot create a communicator it is not a member of"
            )
        context_key = (key if key is not None else ("subcomm",)) + (ranks,)
        context_id = self._allocator.context_for(context_key)
        return Communicator(
            allocator=self._allocator,
            world_ranks=self._allocator.group_for(ranks),
            my_world_rank=self._my_world_rank,
            context_id=context_id,
        )

    def split(self, color: int | None, key: int | None = None):
        """Collective split, following ``MPI_Comm_split`` semantics.

        Ranks passing the same non-negative ``color`` end up in the same new
        communicator, ordered by ``key`` (ties broken by old rank).  Ranks
        passing ``None`` (the analogue of ``MPI_UNDEFINED``) receive ``None``.
        Resumes with the new :class:`Communicator` (or ``None``).
        """
        sort_key = self.rank if key is None else int(key)
        color_value = -1 if color is None else int(color)
        if color is not None and color_value < 0:
            raise CommunicatorError(f"split color must be non-negative or None, got {color}")
        mine = np.array([color_value, sort_key], dtype=np.int64)
        everyone = np.empty(2 * self.size, dtype=np.int64)
        yield from self.allgather(mine, everyone)
        table = everyone.reshape(self.size, 2)
        if color is None:
            return None
        members = sorted(
            (int(table[r, 1]), r) for r in range(self.size) if int(table[r, 0]) == color_value
        )
        world_ranks = tuple(self.group.world_rank(r) for _, r in members)
        return self.create_subcomm(world_ranks, key=("split", self.context_id, color_value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Communicator ctx={self.context_id} rank={self.rank}/{self.size} "
            f"world_rank={self._my_world_rank}>"
        )
