"""Receive status objects (the analogue of ``MPI_Status``)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status"]


@dataclass(slots=True)
class Status:
    """Describes a completed receive.

    Attributes
    ----------
    source:
        World rank of the sender.
    tag:
        Tag the message was sent with.
    nbytes:
        Number of bytes actually received (may be smaller than the posted
        receive buffer, as in MPI).
    """

    source: int = -1
    tag: int = -1
    nbytes: int = 0

    def count(self, itemsize: int) -> int:
        """Number of elements received for a given element size."""
        if itemsize <= 0:
            raise ValueError(f"itemsize must be positive, got {itemsize}")
        if self.nbytes % itemsize != 0:
            raise ValueError(
                f"received {self.nbytes} bytes which is not a whole number of "
                f"{itemsize}-byte elements"
            )
        return self.nbytes // itemsize
