"""Non-blocking communication requests.

A :class:`Request` is returned by ``isend``/``irecv`` and later completed by
the engine.  "Completed" here means the *simulated completion time is
determined*: the engine may determine at posting time that an eager send
will complete two microseconds in the future.  Processes that wait on the
request are resumed no earlier than that time.

Completion notification is split into two paths: the engine's ``Wait``
handling attaches a single counter-based wait state to the ``waiter`` slot
(no per-request callback list on the hot path), while :meth:`on_complete`
keeps the general callback interface for tooling and tests, allocating its
list only when actually used.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import SimulationError
from repro.simmpi.status import Status

__all__ = ["Request"]

_request_ids = itertools.count()


class Request:
    """Handle for an outstanding non-blocking operation."""

    __slots__ = ("id", "kind", "owner", "completion_time", "status", "waiter",
                 "_callbacks")

    def __init__(self, kind: str, owner: int) -> None:
        self.id = next(_request_ids)
        #: ``"send"`` or ``"recv"``.
        self.kind = kind
        #: World rank that posted the request.
        self.owner = owner
        #: Simulated time at which the operation completes; ``None`` until determined.
        self.completion_time: float | None = None
        #: Receive status (populated for recv requests at completion).
        self.status: Status | None = None
        #: The engine's wait state (an object with ``notify()``) while the
        #: owning rank is blocked on this request; ``None`` otherwise.
        self.waiter = None
        self._callbacks: list[Callable[["Request"], None]] | None = None

    # -- completion ------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether the completion time has been determined."""
        return self.completion_time is not None

    def complete(self, time: float, status: Status | None = None) -> None:
        """Mark the request complete at simulated ``time`` (engine use only)."""
        if self.completion_time is not None:
            raise SimulationError(f"request {self.id} completed twice")
        if time < 0.0:
            raise SimulationError(f"completion time must be non-negative, got {time}")
        self.completion_time = time
        self.status = status
        waiter = self.waiter
        if waiter is not None:
            self.waiter = None
            waiter.notify()
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for cb in callbacks:
                cb(self)

    def on_complete(self, callback: Callable[["Request"], None]) -> None:
        """Invoke ``callback(request)`` once the completion time is known."""
        if self.completion_time is not None:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"t={self.completion_time}" if self.completed else "pending"
        return f"<Request {self.id} {self.kind} rank={self.owner} {state}>"
