"""Closed-form cost models of the all-to-all algorithm family.

The discrete-event simulator (:mod:`repro.simmpi`) charges every message
individually, which is exact but too slow in pure Python for the paper's
full scale (3 584 ranks exchange ~12.8 million messages per flat all-to-all).
This package provides hierarchical postal/LogGP-style closed forms derived
from the *same* :class:`~repro.machine.params.MachineParameters`, so that
the full-scale figures can be regenerated instantly.  The models are
cross-validated against the event simulator at common scales in
``tests/model/test_consistency.py``.
"""

from repro.model.costs import (
    CostBreakdown,
    bruck_flat_cost,
    hierarchical_cost,
    multileader_node_aware_cost,
    node_aware_cost,
    nonblocking_flat_cost,
    pairwise_flat_cost,
    system_mpi_cost,
)
from repro.model.loggp import (
    ExchangeEstimate,
    exchange_estimate,
    exchange_estimate_v,
    nic_phase_bound,
)
from repro.model.predict import (
    predict_breakdown,
    predict_time,
    predict_workload_breakdown,
    predict_workload_time,
)
from repro.model.workload_cost import (
    WORKLOAD_MODELED_ALGORITHMS,
    flat_workload_cost,
    node_aware_workload_cost,
)

__all__ = [
    "CostBreakdown",
    "bruck_flat_cost",
    "hierarchical_cost",
    "multileader_node_aware_cost",
    "node_aware_cost",
    "nonblocking_flat_cost",
    "pairwise_flat_cost",
    "system_mpi_cost",
    "ExchangeEstimate",
    "exchange_estimate",
    "exchange_estimate_v",
    "nic_phase_bound",
    "predict_breakdown",
    "predict_time",
    "predict_workload_breakdown",
    "predict_workload_time",
    "WORKLOAD_MODELED_ALGORITHMS",
    "flat_workload_cost",
    "node_aware_workload_cost",
]
