"""Hierarchical postal / LogGP building blocks for the analytic cost model.

The two primitives every algorithm's cost decomposes into are:

* :func:`exchange_estimate` — the time one *representative rank* spends in a
  flat exchange (pairwise, non-blocking or Bruck) with a given peer set,
  accounting for per-level latency/bandwidth, CPU overheads, matching-queue
  search and the rendezvous handshake of large messages;
* :func:`nic_phase_bound` — the lower bound imposed by the node's NIC on any
  phase, computed from the aggregate inter-node messages and bytes the
  node's ranks inject during that phase.

A phase's duration is modelled as the maximum of the two, mirroring how the
event simulator behaves (ranks proceed concurrently but serialize on the
NIC), and an algorithm's duration as the sum of its phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.params import MachineParameters
from repro.machine.process_map import ProcessMap

__all__ = [
    "ExchangeEstimate",
    "exchange_estimate",
    "exchange_estimate_v",
    "nic_phase_bound",
    "fabric_phase_bound",
    "link_phase_bound",
    "uniform_link_bound",
    "cross_numa_bytes",
    "cross_numa_bytes_v",
    "linear_rooted_cost",
]


@dataclass(frozen=True)
class ExchangeEstimate:
    """Per-rank cost estimate of one flat exchange."""

    #: Serial time of the representative rank (wire + CPU + matching), seconds.
    rank_time: float
    #: Inter-node messages the representative rank sends.
    inter_messages: int
    #: Inter-node bytes the representative rank sends.
    inter_bytes: int


def _per_message_time(params: MachineParameters, level: LocalityLevel, nbytes: int) -> float:
    """Wire time of one message at ``level`` including the rendezvous handshake if needed."""
    base = params.wire_time(level, nbytes)
    if not params.is_eager(nbytes):
        base += params.rendezvous_overhead
    return base


def exchange_estimate(
    pmap: ProcessMap,
    me: int,
    peers: Sequence[int],
    msg_bytes: int,
    kind: str,
) -> ExchangeEstimate:
    """Estimate the time rank ``me`` spends exchanging ``msg_bytes`` with every peer.

    ``kind`` selects the exchange structure:

    * ``"pairwise"`` — the peer exchanges happen one after another
      (Algorithm 1): latencies and transfer times add up, but the matching
      queue stays short.
    * ``"nonblocking"`` / ``"batched"`` — everything is posted at once
      (Algorithm 2): transfers still serialize on the rank's own port but
      only one latency is exposed, and matching costs grow quadratically
      with the peer count.
    * ``"bruck"`` — ``ceil(log2(n))`` steps each moving half of the
      aggregate buffer plus local packing.
    """
    params = pmap.params
    npeers = len(peers)
    if npeers == 0:
        return ExchangeEstimate(0.0, 0, 0)
    levels = [pmap.locality(me, peer) for peer in peers]
    inter = [lvl == LocalityLevel.NETWORK for lvl in levels]
    inter_msgs = sum(inter)
    inter_bytes = inter_msgs * msg_bytes
    overhead = params.send_overhead + params.recv_overhead

    if kind == "pairwise":
        wire = sum(_per_message_time(params, lvl, msg_bytes) for lvl in levels)
        cpu = npeers * (overhead + params.match_overhead_per_entry)
        return ExchangeEstimate(wire + cpu, inter_msgs, inter_bytes)

    if kind in ("nonblocking", "batched"):
        # One exposed latency, transfers serialized at the sender's port,
        # matching cost proportional to the average posted-queue length.
        worst_latency = max(params.latency(lvl) for lvl in levels)
        serialized = sum(msg_bytes * params.byte_time(lvl) for lvl in levels)
        rendezvous = 0.0 if params.is_eager(msg_bytes) else params.rendezvous_overhead
        matching = params.match_overhead_per_entry * npeers * (npeers + 1) / 2.0
        cpu = npeers * overhead
        return ExchangeEstimate(
            worst_latency + serialized + rendezvous + matching + cpu, inter_msgs, inter_bytes
        )

    if kind == "bruck":
        n = npeers + 1
        steps = max(1, math.ceil(math.log2(n)))
        step_bytes = (n // 2) * msg_bytes if n > 1 else 0
        worst = max(levels)
        per_step = (
            _per_message_time(params, worst, step_bytes)
            + 2.0 * params.copy_time(step_bytes)
            + overhead
            + params.match_overhead_per_entry
        )
        spans_network = worst == LocalityLevel.NETWORK
        step_inter_msgs = steps if spans_network else 0
        return ExchangeEstimate(steps * per_step, step_inter_msgs, step_inter_msgs * step_bytes)

    raise ConfigurationError(f"unknown exchange kind {kind!r}")


def exchange_estimate_v(
    pmap: ProcessMap,
    me: int,
    peers: Sequence[int],
    peer_bytes: Sequence[int],
    kind: str,
) -> ExchangeEstimate:
    """Estimate the time rank ``me`` spends in a *variable-count* flat exchange.

    Like :func:`exchange_estimate`, but each peer receives its own byte
    count (``peer_bytes[i]`` to ``peers[i]``).  Zero-byte peers exchange no
    message at all, matching the v-algorithms' skip-empty schedule, so a
    sparse traffic matrix pays neither their wire time nor their matching
    cost.  Only the ``"pairwise"`` and ``"nonblocking"`` schedules exist in
    v-form.
    """
    params = pmap.params
    if len(peers) != len(peer_bytes):
        raise ConfigurationError(
            f"got {len(peers)} peers but {len(peer_bytes)} byte counts"
        )
    live = [(peer, int(nbytes)) for peer, nbytes in zip(peers, peer_bytes) if nbytes > 0]
    if not live:
        return ExchangeEstimate(0.0, 0, 0)
    levels = [pmap.locality(me, peer) for peer, _ in live]
    sizes = [nbytes for _, nbytes in live]
    inter = [lvl == LocalityLevel.NETWORK for lvl in levels]
    inter_msgs = sum(inter)
    inter_bytes = sum(n for n, crossing in zip(sizes, inter) if crossing)
    npeers = len(live)
    overhead = params.send_overhead + params.recv_overhead

    if kind == "pairwise":
        wire = sum(_per_message_time(params, lvl, n) for lvl, n in zip(levels, sizes))
        cpu = npeers * (overhead + params.match_overhead_per_entry)
        return ExchangeEstimate(wire + cpu, inter_msgs, inter_bytes)

    if kind in ("nonblocking", "batched"):
        worst_latency = max(params.latency(lvl) for lvl in levels)
        serialized = sum(n * params.byte_time(lvl) for lvl, n in zip(levels, sizes))
        rendezvous = 0.0 if params.is_eager(max(sizes)) else params.rendezvous_overhead
        matching = params.match_overhead_per_entry * npeers * (npeers + 1) / 2.0
        cpu = npeers * overhead
        return ExchangeEstimate(
            worst_latency + serialized + rendezvous + matching + cpu, inter_msgs, inter_bytes
        )

    raise ConfigurationError(
        f"unknown v-exchange kind {kind!r}; only 'pairwise' and 'nonblocking' have v-forms"
    )


def nic_phase_bound(
    params: MachineParameters,
    *,
    messages_per_node: float,
    bytes_per_node: float,
) -> float:
    """Lower bound of a phase from the per-node NIC injection budget."""
    if messages_per_node < 0 or bytes_per_node < 0:
        raise ConfigurationError("NIC bound inputs must be non-negative")
    return messages_per_node * params.nic_message_overhead + bytes_per_node / params.injection_bandwidth


def link_phase_bound(pmap: ProcessMap, pair_msgs, pair_bytes) -> float:
    """Lower bound of a phase from the busiest shared inter-node fabric link.

    ``pair_msgs[a][b]`` / ``pair_bytes[a][b]`` give the inter-node messages
    and bytes node ``a`` sends node ``b`` during the phase (diagonals are
    ignored by empty routes).  The full-bisection default has no shared
    links and imposes no bound, so default predictions are unchanged.  This
    is the congestion-aware sibling of :func:`nic_phase_bound`: the phase
    cannot finish before the busiest link has carried everything routed
    over it.
    """
    state = pmap.model_fabric_state
    if state is None:
        return 0.0
    return state.phase_bound(pair_msgs, pair_bytes)


def uniform_link_bound(
    pmap: ProcessMap,
    *,
    messages_per_node: float,
    bytes_per_node: float,
) -> float:
    """Link bound of a node-symmetric phase (the uniform-algorithm case).

    Each node's inter-node phase load (the same inputs
    :func:`nic_phase_bound` consumes) is spread evenly over the other
    ``num_nodes - 1`` destinations — exact for the flat and aggregated
    uniform exchanges, a uniform approximation for Bruck's log-step
    pattern.
    """
    state = pmap.model_fabric_state
    if state is None or pmap.num_nodes <= 1:
        return 0.0
    if messages_per_node < 0 or bytes_per_node < 0:
        raise ConfigurationError("link bound inputs must be non-negative")
    share = 1.0 / (pmap.num_nodes - 1)
    return state.uniform_phase_bound(messages_per_node * share, bytes_per_node * share)


def cross_numa_bytes(pmap: ProcessMap, me: int, peers: Sequence[int], bytes_per_peer: int) -> int:
    """Bytes rank ``me`` sends to intra-node peers across a NUMA boundary."""
    total = 0
    for peer in peers:
        level = pmap.locality(me, peer)
        if level in (LocalityLevel.SOCKET, LocalityLevel.NODE):
            total += bytes_per_peer
    return total


def cross_numa_bytes_v(
    pmap: ProcessMap, me: int, peers: Sequence[int], peer_bytes: Sequence[int]
) -> int:
    """Bytes rank ``me`` sends to intra-node peers across a NUMA boundary (variable counts)."""
    total = 0
    for peer, nbytes in zip(peers, peer_bytes):
        level = pmap.locality(me, peer)
        if level in (LocalityLevel.SOCKET, LocalityLevel.NODE):
            total += int(nbytes)
    return total


def fabric_phase_bound(
    params: MachineParameters,
    *,
    cross_numa_bytes_per_node: float,
) -> float:
    """Lower bound of a phase from the node's shared cross-NUMA fabric bandwidth."""
    if cross_numa_bytes_per_node < 0:
        raise ConfigurationError("fabric bound input must be non-negative")
    return cross_numa_bytes_per_node / params.cross_numa_bandwidth


def linear_rooted_cost(
    pmap: ProcessMap,
    root: int,
    members: Sequence[int],
    bytes_per_member: int,
) -> float:
    """Cost of a linear rooted gather or scatter at the root.

    The root exchanges ``bytes_per_member`` with every non-root member; the
    transfers serialize at the root, which is exactly the gather/scatter
    bottleneck the hierarchical algorithm suffers from on many-core nodes.
    """
    params = pmap.params
    others = [m for m in members if m != root]
    if not others:
        return params.copy_time(bytes_per_member)
    worst_latency = max(params.latency(pmap.locality(root, m)) for m in others)
    serialized = sum(bytes_per_member * params.byte_time(pmap.locality(root, m)) for m in others)
    rendezvous = 0.0 if params.is_eager(bytes_per_member) else params.rendezvous_overhead
    cpu = len(others) * (params.send_overhead + params.recv_overhead)
    matching = params.match_overhead_per_entry * len(others)
    return worst_latency + serialized + rendezvous + cpu + matching + params.copy_time(bytes_per_member)
