"""Closed-form cost models for non-uniform (TrafficMatrix) workloads.

These mirror :mod:`repro.model.costs`, but consume a
:class:`~repro.workloads.TrafficMatrix` instead of a scalar per-destination
size.  The estimation strategy generalises the uniform models:

* the *rank term* evaluates :func:`repro.model.loggp.exchange_estimate_v`
  for the busiest rank (largest send volume), with that rank's exact
  per-peer byte vector for each phase of the algorithm;
* the *NIC bound* is computed exactly from the matrix: the inter-node bytes
  and non-empty message count each node injects during the phase (maximum
  over nodes), vectorised through node-level aggregation;
* the *fabric bound* charges the busiest node's intra-node cross-NUMA bytes
  against the shared cross-NUMA bandwidth;
* the *link bound* pushes the exact per-node-pair loads over the cluster's
  inter-node fabric routes (:mod:`repro.netsim.fabric`) and charges the
  busiest shared link — zero for the full-bisection default, so default
  predictions are unchanged.

A phase costs the maximum of the three, and an algorithm the sum of its
phases — the same composition rule the uniform models use, so uniform
matrices reproduce the uniform predictions' behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.core.instrumentation import PHASE_INTER, PHASE_INTRA, PHASE_PACK
from repro.errors import ConfigurationError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.process_map import ProcessMap
from repro.model.costs import CostBreakdown
from repro.model.loggp import (
    exchange_estimate_v,
    fabric_phase_bound,
    link_phase_bound,
    nic_phase_bound,
)
from repro.utils.partition import validate_group_size
from repro.workloads.matrix import TrafficMatrix

__all__ = [
    "flat_workload_cost",
    "node_aware_workload_cost",
    "WORKLOAD_MODELED_ALGORITHMS",
]

#: Algorithm names the workload model can predict.
WORKLOAD_MODELED_ALGORITHMS = ("pairwise", "nonblocking", "node-aware")


def _check(pmap: ProcessMap, matrix: TrafficMatrix) -> None:
    if matrix.nprocs != pmap.nprocs:
        raise ConfigurationError(
            f"traffic matrix describes {matrix.nprocs} ranks but the process map "
            f"has {pmap.nprocs}"
        )
    if pmap.nprocs < 2:
        raise ConfigurationError("cost models require at least two ranks")


def _node_pair_loads(matrix_bytes: np.ndarray, num_nodes: int, ppn: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-ordered-node-pair (messages, bytes) matrices with zeroed diagonals.

    The shared inputs of the NIC bound (row sums) and the fabric link bound
    (routed pair loads) for a rank-level traffic matrix.
    """
    blocks = matrix_bytes.reshape(num_nodes, ppn, num_nodes, ppn)
    node_bytes = blocks.sum(axis=(1, 3))
    node_msgs = (blocks > 0).sum(axis=(1, 3))
    np.fill_diagonal(node_bytes, 0)
    np.fill_diagonal(node_msgs, 0)
    return node_msgs, node_bytes


def _max_nic_load(matrix_bytes: np.ndarray, num_nodes: int, ppn: int) -> tuple[int, int]:
    """(messages, bytes) of the busiest node's NIC injection for a rank-level matrix."""
    node_msgs, node_bytes = _node_pair_loads(matrix_bytes, num_nodes, ppn)
    return int(node_msgs.sum(axis=1).max()), int(node_bytes.sum(axis=1).max())


def _max_fabric_load(pmap: ProcessMap, matrix_bytes: np.ndarray) -> int:
    """Cross-NUMA intra-node bytes of the busiest node (shared-fabric traffic)."""
    ppn = pmap.ppn
    numa = np.array([pmap.numa_of(r) for r in range(ppn)])
    cross = numa[:, None] != numa[None, :]
    blocks = matrix_bytes.reshape(pmap.num_nodes, ppn, pmap.num_nodes, ppn)
    worst = 0
    for node in range(pmap.num_nodes):
        worst = max(worst, int((blocks[node, :, node, :] * cross).sum()))
    return worst


def _busiest_rank(matrix_bytes: np.ndarray) -> int:
    return int(matrix_bytes.sum(axis=1).argmax())


def flat_workload_cost(pmap: ProcessMap, matrix: TrafficMatrix, kind: str) -> CostBreakdown:
    """Flat pairwise or non-blocking exchange of a traffic matrix."""
    _check(pmap, matrix)
    bytes_matrix = matrix.bytes
    me = _busiest_rank(bytes_matrix)
    peers = [r for r in range(pmap.nprocs) if r != me]
    peer_bytes = [int(bytes_matrix[me, r]) for r in peers]
    estimate = exchange_estimate_v(pmap, me, peers, peer_bytes, kind)
    pair_msgs, pair_bytes_nodes = _node_pair_loads(bytes_matrix, pmap.num_nodes, pmap.ppn)
    nic = nic_phase_bound(
        pmap.params,
        messages_per_node=int(pair_msgs.sum(axis=1).max()),
        bytes_per_node=int(pair_bytes_nodes.sum(axis=1).max()),
    )
    fabric = fabric_phase_bound(
        pmap.params, cross_numa_bytes_per_node=_max_fabric_load(pmap, bytes_matrix)
    )
    link = link_phase_bound(pmap, pair_msgs, pair_bytes_nodes)
    breakdown = CostBreakdown(kind, matrix.max_pair_bytes, pmap.num_nodes, pmap.ppn)
    breakdown.add(PHASE_INTER, max(estimate.rank_time, nic, fabric, link))
    return breakdown


def node_aware_workload_cost(
    pmap: ProcessMap,
    matrix: TrafficMatrix,
    *,
    procs_per_group: int | None = None,
    inner: str = "pairwise",
) -> CostBreakdown:
    """Node-aware (or locality-aware) aggregated exchange of a traffic matrix.

    Phase structure mirrors
    :func:`repro.core.alltoall.valgorithms.node_aware_alltoallv`: an
    inter-region alltoallv whose per-peer bytes aggregate whole destination
    groups, two repacks, and an intra-region alltoallv that never touches
    the NIC.
    """
    _check(pmap, matrix)
    params = pmap.params
    nprocs = pmap.nprocs
    group = pmap.ppn if procs_per_group is None else procs_per_group
    validate_group_size(pmap.ppn, group)
    ngroups = nprocs // group
    bytes_matrix = matrix.bytes
    breakdown = CostBreakdown("node-aware", matrix.max_pair_bytes, pmap.num_nodes, pmap.ppn)

    me = _busiest_rank(bytes_matrix)
    my_pos = me % group
    my_group = me // group

    # Phase 1: inter-region alltoallv with the position-`my_pos` member of
    # every other group; the message to group g aggregates my bytes for all
    # of g's members.
    cross_peers = [g * group + my_pos for g in range(ngroups) if g != my_group]
    grouped = bytes_matrix[me].reshape(ngroups, group).sum(axis=1)
    cross_bytes = [int(grouped[g]) for g in range(ngroups) if g != my_group]
    estimate = exchange_estimate_v(pmap, me, cross_peers, cross_bytes, inner)

    # Exact NIC load of the aggregated phase: rank r's message to group g
    # crosses the network when r's node differs from g's node.
    rank_to_group = bytes_matrix.reshape(nprocs, ngroups, group).sum(axis=2)
    groups_per_node = pmap.ppn // group
    node_of_rank = np.arange(nprocs) // pmap.ppn
    node_of_group = np.arange(ngroups) // groups_per_node
    crossing = node_of_rank[:, None] != node_of_group[None, :]
    masked = np.where(crossing, rank_to_group, 0)
    per_node_view = masked.reshape(pmap.num_nodes, pmap.ppn, ngroups)
    nic_bytes = int(per_node_view.sum(axis=(1, 2)).max())
    nic_msgs = int((per_node_view > 0).sum(axis=(1, 2)).max())
    nic = nic_phase_bound(params, messages_per_node=nic_msgs, bytes_per_node=nic_bytes)
    # Exact per-node-pair loads of the aggregated phase for the fabric bound.
    pair_shape = (pmap.num_nodes, pmap.ppn, pmap.num_nodes, groups_per_node)
    pair_bytes = masked.reshape(pair_shape).sum(axis=(1, 3))
    pair_msgs = (masked > 0).reshape(pair_shape).sum(axis=(1, 3))
    link = link_phase_bound(pmap, pair_msgs, pair_bytes)
    breakdown.add(PHASE_INTER, max(estimate.rank_time, nic, link))

    # Phase 2 + 4: repack what the busiest rank relays (its phase-1 receive
    # volume) and its final receive volume.
    reps = np.arange(ngroups) * group + my_pos
    members = my_group * group + np.arange(group)
    relay_bytes = int(bytes_matrix[np.ix_(reps, members)].sum())
    final_bytes = int(bytes_matrix[:, me].sum())
    breakdown.add(PHASE_PACK, params.copy_time(relay_bytes) + params.copy_time(final_bytes))

    # Phase 3: intra-region alltoallv among my group members; the message to
    # member k carries everything the position-`my_pos` sources addressed to k.
    group_peers = [int(m) for m in members if m != me]
    intra_bytes = [int(bytes_matrix[np.ix_(reps, [m])].sum()) for m in group_peers]
    intra = exchange_estimate_v(pmap, me, group_peers, intra_bytes, inner)
    fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=_intra_fabric_load(pmap, bytes_matrix, group),
    )
    breakdown.add(PHASE_INTRA, max(intra.rank_time, fabric))
    return breakdown


def _intra_fabric_load(pmap: ProcessMap, bytes_matrix: np.ndarray, group: int) -> int:
    """Busiest node's cross-NUMA bytes during the intra-region redistribution.

    Member ``k`` of a group relays to member ``m`` (same node) the bytes that
    every position-``k`` source addressed to ``m``; only relays crossing a
    NUMA boundary load the shared fabric.
    """
    nprocs = pmap.nprocs
    ppn = pmap.ppn
    ngroups = nprocs // group
    groups_per_node = ppn // group
    # position_cols[k, d]: bytes every position-k source addressed to rank d.
    position_cols = bytes_matrix.reshape(ngroups, group, nprocs).sum(axis=0)
    # numa_by_pos[k, g_local]: NUMA domain of the member at position k of the
    # node-local group g_local (identical layout on every node).
    numa = np.array([pmap.numa_of(r) for r in range(ppn)])
    numa_by_pos = numa.reshape(groups_per_node, group).T
    # crossing[k, g_local, m]: relay k -> m within group g_local spans NUMA domains.
    crossing = numa_by_pos[:, :, None] != numa_by_pos.T[None, :, :]
    crossing &= ~np.eye(group, dtype=bool)[:, None, :]
    worst = 0
    for node in range(pmap.num_nodes):
        relayed = position_cols[:, node * ppn: (node + 1) * ppn].reshape(
            group, groups_per_node, group
        )
        worst = max(worst, int(relayed[crossing].sum()))
    return worst
