"""Closed-form cost models, one function per all-to-all algorithm.

Every function mirrors the phase structure of the corresponding simulated
algorithm in :mod:`repro.core.alltoall` and reuses the elementary estimates
from :mod:`repro.model.loggp`, so the analytic predictions and the event
simulation are derived from the same machine parameters and the same
communication schedules — only the level of detail differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrumentation import (
    PHASE_GATHER,
    PHASE_INTER,
    PHASE_INTRA,
    PHASE_PACK,
    PHASE_SCATTER,
)
from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.model.loggp import (
    cross_numa_bytes,
    exchange_estimate,
    fabric_phase_bound,
    linear_rooted_cost,
    nic_phase_bound,
    uniform_link_bound,
)
from repro.utils.partition import validate_group_size

__all__ = [
    "CostBreakdown",
    "pairwise_flat_cost",
    "nonblocking_flat_cost",
    "bruck_flat_cost",
    "system_mpi_cost",
    "hierarchical_cost",
    "node_aware_cost",
    "multileader_node_aware_cost",
]


@dataclass
class CostBreakdown:
    """Predicted execution time of one algorithm, split into phases."""

    algorithm: str
    msg_bytes: int
    num_nodes: int
    ppn: int
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def phase(self, name: str) -> float:
        return self.phases.get(name, 0.0)

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + max(0.0, seconds)


def _check(pmap: ProcessMap, msg_bytes: int) -> None:
    if msg_bytes <= 0:
        raise ConfigurationError(f"msg_bytes must be positive, got {msg_bytes}")
    if pmap.nprocs < 2:
        raise ConfigurationError("cost models require at least two ranks")


# ---------------------------------------------------------------------------
# Flat exchanges
# ---------------------------------------------------------------------------

def _flat_cost(pmap: ProcessMap, msg_bytes: int, kind: str, name: str) -> CostBreakdown:
    _check(pmap, msg_bytes)
    me = 0
    peers = [r for r in range(pmap.nprocs) if r != me]
    estimate = exchange_estimate(pmap, me, peers, msg_bytes, kind)
    nic = nic_phase_bound(
        pmap.params,
        messages_per_node=estimate.inter_messages * pmap.ppn,
        bytes_per_node=estimate.inter_bytes * pmap.ppn,
    )
    fabric = fabric_phase_bound(
        pmap.params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, me, peers, msg_bytes) * pmap.ppn,
    )
    link = uniform_link_bound(
        pmap,
        messages_per_node=estimate.inter_messages * pmap.ppn,
        bytes_per_node=estimate.inter_bytes * pmap.ppn,
    )
    breakdown = CostBreakdown(name, msg_bytes, pmap.num_nodes, pmap.ppn)
    breakdown.add(PHASE_INTER, max(estimate.rank_time, nic, fabric, link))
    return breakdown


def pairwise_flat_cost(pmap: ProcessMap, msg_bytes: int) -> CostBreakdown:
    """Flat pairwise exchange (Algorithm 1)."""
    return _flat_cost(pmap, msg_bytes, "pairwise", "pairwise")


def nonblocking_flat_cost(pmap: ProcessMap, msg_bytes: int) -> CostBreakdown:
    """Flat non-blocking exchange (Algorithm 2)."""
    return _flat_cost(pmap, msg_bytes, "nonblocking", "nonblocking")


def bruck_flat_cost(pmap: ProcessMap, msg_bytes: int) -> CostBreakdown:
    """Flat Bruck exchange (log-step, small messages)."""
    return _flat_cost(pmap, msg_bytes, "bruck", "bruck")


def system_mpi_cost(
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    small_threshold: int = 256,
    medium_threshold: int = 32768,
) -> CostBreakdown:
    """Size-switched baseline mirroring :class:`~repro.core.alltoall.system_mpi.SystemMPIAlltoall`."""
    if msg_bytes <= small_threshold:
        inner = bruck_flat_cost(pmap, msg_bytes)
    elif msg_bytes <= medium_threshold:
        inner = nonblocking_flat_cost(pmap, msg_bytes)
    else:
        inner = pairwise_flat_cost(pmap, msg_bytes)
    inner.algorithm = "system-mpi"
    return inner


# ---------------------------------------------------------------------------
# Hierarchical / multi-leader (Algorithm 3)
# ---------------------------------------------------------------------------

def hierarchical_cost(
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    procs_per_leader: int | None = None,
    inner: str = "pairwise",
) -> CostBreakdown:
    """Hierarchical (one leader per node) or multi-leader all-to-all."""
    _check(pmap, msg_bytes)
    params = pmap.params
    nprocs = pmap.nprocs
    ppl = pmap.ppn if procs_per_leader is None else procs_per_leader
    validate_group_size(pmap.ppn, ppl)
    ngroups = nprocs // ppl
    leaders_per_node = pmap.ppn // ppl
    breakdown = CostBreakdown("hierarchical", msg_bytes, pmap.num_nodes, pmap.ppn)

    leader = 0
    members = list(range(ppl))
    full_buffer = nprocs * msg_bytes

    # All leaders of a node perform their gathers concurrently, so the
    # cross-NUMA portion of the gathered bytes contends on the node fabric.
    rooted_fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, leader, members, full_buffer)
        * leaders_per_node,
    )
    breakdown.add(PHASE_GATHER, max(linear_rooted_cost(pmap, leader, members, full_buffer), rooted_fabric))
    breakdown.add(PHASE_PACK, 2.0 * params.copy_time(ppl * full_buffer))

    peer_leaders = [g * ppl for g in range(ngroups) if g != 0]
    leader_msg = ppl * ppl * msg_bytes
    estimate = exchange_estimate(pmap, leader, peer_leaders, leader_msg, inner)
    nic = nic_phase_bound(
        params,
        messages_per_node=estimate.inter_messages * leaders_per_node,
        bytes_per_node=estimate.inter_bytes * leaders_per_node,
    )
    leader_fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, leader, peer_leaders, leader_msg)
        * leaders_per_node,
    )
    link = uniform_link_bound(
        pmap,
        messages_per_node=estimate.inter_messages * leaders_per_node,
        bytes_per_node=estimate.inter_bytes * leaders_per_node,
    )
    breakdown.add(PHASE_INTER, max(estimate.rank_time, nic, leader_fabric, link))

    breakdown.add(PHASE_SCATTER, max(linear_rooted_cost(pmap, leader, members, full_buffer), rooted_fabric))
    return breakdown


# ---------------------------------------------------------------------------
# Node-aware / locality-aware (Algorithm 4)
# ---------------------------------------------------------------------------

def node_aware_cost(
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    procs_per_group: int | None = None,
    inner: str = "pairwise",
) -> CostBreakdown:
    """Node-aware aggregation, or locality-aware aggregation for smaller groups."""
    _check(pmap, msg_bytes)
    params = pmap.params
    nprocs = pmap.nprocs
    group = pmap.ppn if procs_per_group is None else procs_per_group
    validate_group_size(pmap.ppn, group)
    ngroups = nprocs // group
    breakdown = CostBreakdown("node-aware", msg_bytes, pmap.num_nodes, pmap.ppn)

    me = 0
    # Inter-region phase: one peer per other aggregation group, messages of
    # group * msg_bytes.
    peers = [g * group for g in range(ngroups) if g != 0]
    inter_msg = group * msg_bytes
    estimate = exchange_estimate(pmap, me, peers, inter_msg, inner)
    nic = nic_phase_bound(
        params,
        messages_per_node=estimate.inter_messages * pmap.ppn,
        bytes_per_node=estimate.inter_bytes * pmap.ppn,
    )
    inter_fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, me, peers, inter_msg) * pmap.ppn,
    )
    link = uniform_link_bound(
        pmap,
        messages_per_node=estimate.inter_messages * pmap.ppn,
        bytes_per_node=estimate.inter_bytes * pmap.ppn,
    )
    breakdown.add(PHASE_INTER, max(estimate.rank_time, nic, inter_fabric, link))

    breakdown.add(PHASE_PACK, 2.0 * params.copy_time(nprocs * msg_bytes))

    # Intra-region phase: exchange with the other members of my group,
    # messages of (nprocs / group) * msg_bytes.  Every rank of the node does
    # this concurrently, so cross-NUMA traffic contends on the node fabric —
    # the effect locality-aware aggregation is designed to avoid.
    group_members = [r for r in range(1, group)]
    intra_msg = ngroups * msg_bytes
    intra = exchange_estimate(pmap, me, group_members, intra_msg, inner)
    intra_fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, me, group_members, intra_msg) * pmap.ppn,
    )
    breakdown.add(PHASE_INTRA, max(intra.rank_time, intra_fabric))
    return breakdown


# ---------------------------------------------------------------------------
# Multi-leader + node-aware (Algorithm 5)
# ---------------------------------------------------------------------------

def multileader_node_aware_cost(
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    procs_per_leader: int = 4,
    inner: str = "pairwise",
) -> CostBreakdown:
    """The paper's combined multi-leader + node-aware algorithm."""
    _check(pmap, msg_bytes)
    params = pmap.params
    nprocs = pmap.nprocs
    ppn = pmap.ppn
    num_nodes = pmap.num_nodes
    validate_group_size(ppn, procs_per_leader)
    ppl = procs_per_leader
    leaders_per_node = ppn // ppl
    breakdown = CostBreakdown("multileader-node-aware", msg_bytes, num_nodes, ppn)

    leader = 0
    members = list(range(ppl))
    full_buffer = nprocs * msg_bytes

    rooted_fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, leader, members, full_buffer)
        * leaders_per_node,
    )
    breakdown.add(PHASE_GATHER, max(linear_rooted_cost(pmap, leader, members, full_buffer), rooted_fabric))
    breakdown.add(PHASE_PACK, 3.0 * params.copy_time(ppl * full_buffer))

    # Inter-node phase: one message per remote node of ppl * ppn * msg_bytes.
    remote_leaders = [n * ppn for n in range(num_nodes) if n != 0]
    inter_msg = ppl * ppn * msg_bytes
    inter = exchange_estimate(pmap, leader, remote_leaders, inter_msg, inner)
    nic = nic_phase_bound(
        params,
        messages_per_node=inter.inter_messages * leaders_per_node,
        bytes_per_node=inter.inter_bytes * leaders_per_node,
    )
    link = uniform_link_bound(
        pmap,
        messages_per_node=inter.inter_messages * leaders_per_node,
        bytes_per_node=inter.inter_bytes * leaders_per_node,
    )
    breakdown.add(PHASE_INTER, max(inter.rank_time, nic, link))

    # Intra-node phase among the node's leaders: messages of
    # num_nodes * ppl^2 * msg_bytes, all leaders of the node concurrently.
    node_leaders = [k * ppl for k in range(1, leaders_per_node)]
    intra_msg = num_nodes * ppl * ppl * msg_bytes
    intra = exchange_estimate(pmap, leader, node_leaders, intra_msg, inner)
    intra_fabric = fabric_phase_bound(
        params,
        cross_numa_bytes_per_node=cross_numa_bytes(pmap, leader, node_leaders, intra_msg)
        * leaders_per_node,
    )
    breakdown.add(PHASE_INTRA, max(intra.rank_time, intra_fabric))

    breakdown.add(PHASE_SCATTER, max(linear_rooted_cost(pmap, leader, members, full_buffer), rooted_fabric))
    return breakdown
