"""Dispatch layer of the analytic model: predict by algorithm name.

``predict_time`` / ``predict_breakdown`` accept the same algorithm names and
options as :func:`repro.core.runner.run_alltoall`, which lets the benchmark
harness and the algorithm selector switch transparently between simulated
and modelled timings.  ``predict_workload_time`` /
``predict_workload_breakdown`` do the same for non-uniform workloads: they
consume a :class:`~repro.workloads.TrafficMatrix` instead of a scalar
message size and mirror :func:`repro.core.runner.run_workload`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.model.costs import (
    CostBreakdown,
    bruck_flat_cost,
    hierarchical_cost,
    multileader_node_aware_cost,
    node_aware_cost,
    nonblocking_flat_cost,
    pairwise_flat_cost,
    system_mpi_cost,
)
from repro.model.workload_cost import (
    WORKLOAD_MODELED_ALGORITHMS,
    flat_workload_cost,
    node_aware_workload_cost,
)

__all__ = [
    "predict_breakdown",
    "predict_time",
    "predict_workload_breakdown",
    "predict_workload_time",
    "MODELED_ALGORITHMS",
    "WORKLOAD_MODELED_ALGORITHMS",
]

#: Algorithm names the analytic model can predict.
MODELED_ALGORITHMS = (
    "pairwise",
    "nonblocking",
    "bruck",
    "batched",
    "system-mpi",
    "hierarchical",
    "multileader",
    "node-aware",
    "locality-aware",
    "multileader-node-aware",
)


def predict_breakdown(algorithm: str, pmap: ProcessMap, msg_bytes: int, **options) -> CostBreakdown:
    """Predicted per-phase cost of ``algorithm`` on ``pmap`` for ``msg_bytes`` per destination."""
    name = algorithm.lower()
    inner = options.pop("inner", "pairwise")
    if name == "pairwise":
        _reject_options(name, options)
        return pairwise_flat_cost(pmap, msg_bytes)
    if name in ("nonblocking", "batched"):
        options.pop("batch_size", None)
        _reject_options(name, options)
        return nonblocking_flat_cost(pmap, msg_bytes)
    if name == "bruck":
        _reject_options(name, options)
        return bruck_flat_cost(pmap, msg_bytes)
    if name == "system-mpi":
        return system_mpi_cost(pmap, msg_bytes, **options)
    if name == "hierarchical":
        return hierarchical_cost(
            pmap, msg_bytes, procs_per_leader=options.pop("procs_per_leader", None), inner=inner
        )
    if name == "multileader":
        return hierarchical_cost(
            pmap, msg_bytes, procs_per_leader=options.pop("procs_per_leader", 4), inner=inner
        )
    if name == "node-aware":
        _reject_options(name, options)
        return node_aware_cost(pmap, msg_bytes, procs_per_group=None, inner=inner)
    if name == "locality-aware":
        return node_aware_cost(
            pmap, msg_bytes, procs_per_group=options.pop("procs_per_group", 4), inner=inner
        )
    if name == "multileader-node-aware":
        return multileader_node_aware_cost(
            pmap, msg_bytes, procs_per_leader=options.pop("procs_per_leader", 4), inner=inner
        )
    raise ConfigurationError(
        f"the analytic model does not cover algorithm {algorithm!r}; "
        f"modelled algorithms: {', '.join(MODELED_ALGORITHMS)}"
    )


def predict_time(algorithm: str, pmap: ProcessMap, msg_bytes: int, **options) -> float:
    """Predicted total execution time in seconds."""
    return predict_breakdown(algorithm, pmap, msg_bytes, **options).total


def predict_workload_breakdown(algorithm: str, pmap: ProcessMap, matrix, **options) -> CostBreakdown:
    """Predicted per-phase cost of exchanging a :class:`~repro.workloads.TrafficMatrix`.

    Accepts the same algorithm names and options as
    :func:`repro.core.runner.run_workload` (``pairwise``, ``nonblocking``
    and ``node-aware``, the latter with ``procs_per_group`` / ``inner``).
    A raw square byte array is accepted and wrapped.
    """
    from repro.workloads.matrix import TrafficMatrix

    if isinstance(matrix, np.ndarray):
        matrix = TrafficMatrix(matrix)
    name = algorithm.lower()
    if name in ("pairwise", "nonblocking"):
        _reject_options(name, options)
        return flat_workload_cost(pmap, matrix, name)
    if name == "node-aware":
        procs_per_group = options.pop("procs_per_group", None)
        inner = options.pop("inner", "pairwise")
        _reject_options(name, options)
        return node_aware_workload_cost(
            pmap, matrix, procs_per_group=procs_per_group, inner=inner
        )
    raise ConfigurationError(
        f"the workload model does not cover algorithm {algorithm!r}; "
        f"modelled algorithms: {', '.join(WORKLOAD_MODELED_ALGORITHMS)}"
    )


def predict_workload_time(algorithm: str, pmap: ProcessMap, matrix, **options) -> float:
    """Predicted total execution time of a workload exchange, in seconds."""
    return predict_workload_breakdown(algorithm, pmap, matrix, **options).total


def _reject_options(name: str, options: dict) -> None:
    if options:
        raise ConfigurationError(f"algorithm {name!r} does not accept options {sorted(options)}")
