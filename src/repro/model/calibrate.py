"""Cross-validation of the analytic model against the event simulator.

The analytic model exists to extrapolate the figures to the paper's full
scale; its value depends on agreeing with the detailed simulation where both
can run.  :func:`compare_model_to_simulation` runs both for a set of
configurations and reports the per-point ratio, and
:func:`ordering_agreement` checks the property the reproduction actually
relies on — that the two engines rank the algorithms the same way at a given
message size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.runner import run_alltoall
from repro.machine.process_map import ProcessMap
from repro.model.predict import predict_time

__all__ = ["CalibrationPoint", "compare_model_to_simulation", "ordering_agreement"]


@dataclass(frozen=True)
class CalibrationPoint:
    """One (algorithm, message size) comparison between model and simulation."""

    algorithm: str
    msg_bytes: int
    simulated: float
    modelled: float

    @property
    def ratio(self) -> float:
        """Modelled / simulated time (1.0 means perfect agreement)."""
        if self.simulated <= 0.0:
            return float("inf")
        return self.modelled / self.simulated


def compare_model_to_simulation(
    pmap: ProcessMap,
    configs: Sequence[tuple[str, dict]],
    msg_sizes: Sequence[int],
) -> list[CalibrationPoint]:
    """Run every (algorithm, options) config at every size through both engines."""
    points: list[CalibrationPoint] = []
    for name, options in configs:
        for msg_bytes in msg_sizes:
            simulated = run_alltoall(
                name, pmap, msg_bytes, validate=False, keep_job=False, **options
            ).elapsed
            modelled = predict_time(name, pmap, msg_bytes, **options)
            points.append(
                CalibrationPoint(
                    algorithm=name, msg_bytes=msg_bytes, simulated=simulated, modelled=modelled
                )
            )
    return points


def ordering_agreement(points: Sequence[CalibrationPoint]) -> float:
    """Fraction of message sizes at which model and simulation agree on the fastest algorithm."""
    sizes = sorted({p.msg_bytes for p in points})
    if not sizes:
        return 1.0
    agreements = 0
    for size in sizes:
        at_size = [p for p in points if p.msg_bytes == size]
        best_sim = min(at_size, key=lambda p: p.simulated).algorithm
        best_model = min(at_size, key=lambda p: p.modelled).algorithm
        agreements += int(best_sim == best_model)
    return agreements / len(sizes)
