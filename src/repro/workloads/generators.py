"""Traffic-pattern generators: one function per workload family.

Each generator returns a :class:`~repro.workloads.matrix.TrafficMatrix` and
is deterministic for a given ``seed``, so simulated runs, model predictions
and tests all see exactly the same exchange.  The families mirror the
workloads that motivate the paper:

* :func:`uniform` — the paper's benchmark: every rank sends ``msg_bytes``
  to every rank (including itself, like ``MPI_Alltoall``);
* :func:`skewed_moe` — MoE token shuffle with hot experts: a fraction of
  destination ranks receives ``concentration`` times the base traffic,
  with per-pair jitter from the routing randomness;
* :func:`block_diagonal` — tensor-parallel groups: dense traffic inside
  consecutive groups of ranks, optional light background traffic outside;
* :func:`zipf` — power-law fan-out: each source's per-destination bytes
  follow a Zipf distribution over a source-specific destination order;
* :func:`sparse` — bounded out-degree: each source sends to a fixed number
  of random destinations only (neighbourhood exchanges, graph workloads);
* :func:`incast` — every source floods a few victim destinations: the
  link-contention stressor (fabric downlinks into the victims' nodes);
* :func:`neighbor_shift` — cyclic shifted neighbour exchange (halo /
  pipeline hand-off traffic), loading fabric links asymmetrically;
* :func:`from_trace` — replay a recorded JSON trace
  (see :mod:`repro.workloads.traceio`).

The :data:`PATTERNS` registry maps CLI-friendly names to the generators;
:func:`make_pattern` instantiates one by name.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.matrix import TrafficMatrix

__all__ = [
    "uniform",
    "skewed_moe",
    "block_diagonal",
    "zipf",
    "sparse",
    "incast",
    "neighbor_shift",
    "self_only",
    "from_trace",
    "PATTERNS",
    "make_pattern",
    "list_patterns",
]


def _check_args(nprocs: int, msg_bytes: int) -> None:
    if nprocs <= 0:
        raise ConfigurationError(f"nprocs must be positive, got {nprocs}")
    if msg_bytes <= 0:
        raise ConfigurationError(f"msg_bytes must be positive, got {msg_bytes}")


def uniform(nprocs: int, msg_bytes: int) -> TrafficMatrix:
    """Every rank sends ``msg_bytes`` to every rank — the paper's uniform exchange."""
    _check_args(nprocs, msg_bytes)
    return TrafficMatrix(
        np.full((nprocs, nprocs), msg_bytes, dtype=np.int64), pattern="uniform"
    )


def skewed_moe(
    nprocs: int,
    msg_bytes: int,
    *,
    concentration: float = 4.0,
    hot_fraction: float = 0.125,
    jitter: float = 0.25,
    seed: int = 0,
) -> TrafficMatrix:
    """MoE token shuffle with skewed expert routing.

    Destinations model experts; a ``hot_fraction`` of them (at least one)
    attracts ``concentration`` times the base bytes from every source, and
    every pair gets multiplicative jitter of up to ``jitter`` drawn from the
    seeded RNG — the token-count noise of real routing.
    """
    _check_args(nprocs, msg_bytes)
    if concentration < 1.0:
        raise ConfigurationError(f"concentration must be >= 1, got {concentration}")
    if not 0.0 < hot_fraction <= 1.0:
        raise ConfigurationError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if not 0.0 <= jitter < 1.0:
        raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
    rng = np.random.default_rng(seed)
    num_hot = max(1, int(round(hot_fraction * nprocs)))
    hot = rng.permutation(nprocs)[:num_hot]
    weights = np.ones(nprocs)
    weights[hot] = concentration
    matrix = msg_bytes * np.broadcast_to(weights, (nprocs, nprocs)).copy()
    if jitter:
        matrix = matrix * (1.0 + rng.uniform(-jitter, jitter, size=(nprocs, nprocs)))
    return TrafficMatrix(np.maximum(1, np.rint(matrix)).astype(np.int64), pattern="skewed-moe")


def block_diagonal(
    nprocs: int,
    msg_bytes: int,
    *,
    group_size: int = 4,
    remote_bytes: int = 0,
) -> TrafficMatrix:
    """Dense traffic inside consecutive groups of ``group_size`` ranks.

    Models tensor-parallel collectives (each group exchanges internally);
    ``remote_bytes`` adds uniform background traffic between groups (e.g. a
    light data-parallel component).
    """
    _check_args(nprocs, msg_bytes)
    if group_size <= 0 or nprocs % group_size != 0:
        raise ConfigurationError(
            f"group_size={group_size} does not evenly divide {nprocs} ranks"
        )
    if remote_bytes < 0:
        raise ConfigurationError(f"remote_bytes must be non-negative, got {remote_bytes}")
    groups = np.arange(nprocs) // group_size
    same_group = groups[:, None] == groups[None, :]
    matrix = np.where(same_group, msg_bytes, remote_bytes)
    return TrafficMatrix(matrix.astype(np.int64), pattern="block-diagonal")


def zipf(
    nprocs: int,
    msg_bytes: int,
    *,
    exponent: float = 1.2,
    seed: int = 0,
) -> TrafficMatrix:
    """Power-law fan-out: destination ``k``-th favourite of a source gets ``msg_bytes / (k+1)^a``.

    Each source ranks the destinations in a source-specific random order, so
    the heavy pairs are spread over the machine rather than piling onto rank 0.
    Entries round down to whole bytes; at least the favourite destination of
    every source always receives ``msg_bytes``.
    """
    _check_args(nprocs, msg_bytes)
    if exponent <= 0.0:
        raise ConfigurationError(f"exponent must be positive, got {exponent}")
    rng = np.random.default_rng(seed)
    decay = msg_bytes / np.power(np.arange(1, nprocs + 1, dtype=np.float64), exponent)
    matrix = np.zeros((nprocs, nprocs), dtype=np.int64)
    for src in range(nprocs):
        order = rng.permutation(nprocs)
        matrix[src, order] = decay.astype(np.int64)
    return TrafficMatrix(matrix, pattern="zipf")


def sparse(
    nprocs: int,
    msg_bytes: int,
    *,
    out_degree: int = 4,
    seed: int = 0,
) -> TrafficMatrix:
    """Bounded fan-out: each source sends ``msg_bytes`` to ``out_degree`` distinct peers.

    Destinations are drawn without replacement from the other ranks, so the
    diagonal stays empty and every row has exactly ``out_degree`` non-zero
    entries (clamped to ``nprocs - 1`` on tiny jobs).
    """
    _check_args(nprocs, msg_bytes)
    if out_degree <= 0:
        raise ConfigurationError(f"out_degree must be positive, got {out_degree}")
    degree = min(out_degree, nprocs - 1)
    matrix = np.zeros((nprocs, nprocs), dtype=np.int64)
    if degree == 0:
        # A single-rank job has no peers; keep one self-entry so the matrix
        # still describes a (degenerate but valid) exchange.
        matrix[0, 0] = msg_bytes
        return TrafficMatrix(matrix, pattern="sparse")
    rng = np.random.default_rng(seed)
    for src in range(nprocs):
        peers = np.delete(np.arange(nprocs), src)
        chosen = rng.choice(peers, size=degree, replace=False)
        matrix[src, chosen] = msg_bytes
    return TrafficMatrix(matrix, pattern="sparse")


def incast(
    nprocs: int,
    msg_bytes: int,
    *,
    hotspots: int = 1,
    background_bytes: int = 0,
    seed: int = 0,
) -> TrafficMatrix:
    """Every source floods a few victim destinations — the classic incast.

    ``hotspots`` destinations (drawn without replacement from the seeded
    RNG, so they spread across nodes run-to-run) each receive ``msg_bytes``
    from **every** source; all other pairs carry ``background_bytes``
    (default none).  With sequential rank placement the victims' nodes —
    and, on a contended fabric (:mod:`repro.netsim.fabric`), the links into
    them — become the bottleneck, which is invisible on the contention-free
    full-bisection default.
    """
    _check_args(nprocs, msg_bytes)
    if not 1 <= hotspots <= nprocs:
        raise ConfigurationError(
            f"hotspots must be in [1, {nprocs}], got {hotspots}"
        )
    if background_bytes < 0:
        raise ConfigurationError(
            f"background_bytes must be non-negative, got {background_bytes}"
        )
    rng = np.random.default_rng(seed)
    victims = rng.permutation(nprocs)[:hotspots]
    matrix = np.full((nprocs, nprocs), background_bytes, dtype=np.int64)
    matrix[:, victims] = msg_bytes
    return TrafficMatrix(matrix, pattern="incast")


def neighbor_shift(
    nprocs: int,
    msg_bytes: int,
    *,
    shift: int = 1,
    degree: int = 1,
) -> TrafficMatrix:
    """Cyclic neighbour exchange: rank ``r`` sends to ``r + k * shift`` (mod n).

    ``degree`` consecutive multiples of ``shift`` receive ``msg_bytes``
    each — halo exchanges and pipeline-parallel hand-offs.  A ``shift``
    equal to the job's ppn makes every message cross nodes in the same
    direction, loading each fabric link asymmetrically (uniform traffic
    never does), which is what makes this shape a link-contention stressor.

    The traffic is strictly off-diagonal: a shift multiple that wraps back
    onto the source (``k * shift ≡ 0 mod n``) is skipped rather than
    silently turned into a self-send, and a ``shift`` that is itself a
    multiple of ``nprocs`` (no neighbour at all) is rejected.
    """
    _check_args(nprocs, msg_bytes)
    if degree <= 0:
        raise ConfigurationError(f"degree must be positive, got {degree}")
    if shift % nprocs == 0:
        raise ConfigurationError(
            f"shift={shift} is a multiple of nprocs={nprocs}: every 'neighbour' "
            "would be the source itself"
        )
    matrix = np.zeros((nprocs, nprocs), dtype=np.int64)
    sources = np.arange(nprocs)
    for k in range(1, degree + 1):
        if (k * shift) % nprocs == 0:
            continue
        matrix[sources, (sources + k * shift) % nprocs] = msg_bytes
    return TrafficMatrix(matrix, pattern="neighbor-shift")


def self_only(nprocs: int, msg_bytes: int) -> TrafficMatrix:
    """Purely diagonal traffic: every rank sends ``msg_bytes`` only to itself.

    The degenerate limit of locality: no bytes ever leave a rank, so every
    algorithm must reduce to a local copy.  Exercised by the conformance
    fuzzer (:mod:`repro.verify`) because self-blocks follow a different code
    path (``LocalCopy``) than real messages in every exchange kernel.
    """
    _check_args(nprocs, msg_bytes)
    return TrafficMatrix(
        np.diag(np.full(nprocs, msg_bytes, dtype=np.int64)), pattern="self-only"
    )


def from_trace(source) -> TrafficMatrix:
    """Replay a recorded trace (path, JSON string, dict or record list).

    Thin wrapper over :func:`repro.workloads.traceio.load_trace` so traces
    participate in the :data:`PATTERNS` registry documentation.
    """
    from repro.workloads.traceio import load_trace

    return load_trace(source)


#: CLI-friendly pattern name -> generator ``f(nprocs, msg_bytes, **options)``.
PATTERNS: dict[str, Callable[..., TrafficMatrix]] = {
    "uniform": uniform,
    "skewed-moe": skewed_moe,
    "block-diagonal": block_diagonal,
    "zipf": zipf,
    "sparse": sparse,
    "incast": incast,
    "neighbor-shift": neighbor_shift,
    "self-only": self_only,
}


def list_patterns() -> list[str]:
    """Names of every registered traffic pattern generator."""
    return list(PATTERNS)


def make_pattern(name: str, nprocs: int, msg_bytes: int, **options) -> TrafficMatrix:
    """Instantiate a registered pattern by name.

    Examples
    --------
    >>> make_pattern("skewed-moe", 32, 64, concentration=8.0)
    >>> make_pattern("block-diagonal", 32, 256, group_size=8)
    """
    if name not in PATTERNS:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; available: {', '.join(sorted(PATTERNS))}"
        )
    try:
        return PATTERNS[name](nprocs, msg_bytes, **options)
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for pattern {name!r}: {exc}") from exc
