"""Phased workloads: an ordered sequence of traffic matrices.

A training iteration is not one exchange.  An MoE forward/backward pass
alternates dense allreduce-like shuffles with skewed expert-routing
all-to-alls; an FFT pipeline alternates transposes of different shapes.  A
:class:`PhasedWorkload` captures that structure as an ordered list of
:class:`Phase` objects — each a named :class:`~repro.workloads.matrix.TrafficMatrix`
with a repeat count — so the selection question ("which algorithm wins?")
can be asked *per phase* instead of once.

The class is deliberately value-like: phases are validated once (uniform
rank count, positive repeats), equality is structural, and
:meth:`PhasedWorkload.payload` / :meth:`PhasedWorkload.digest` give the
canonical JSON form and content hash used for cache identity
(:class:`repro.runtime.spec.PointSpec`) and the ingestion
:class:`~repro.ingest.store.TraceStore`.  :func:`load_phased` /
:func:`save_phased` persist that JSON form on disk.

Construction paths:

* programmatic — build matrices with :mod:`repro.workloads.generators` and
  wrap them in phases;
* ingestion — :mod:`repro.ingest` parses phase-logged / MoE token-routing
  traces and normalises them into a :class:`PhasedWorkload`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.workloads.matrix import TrafficMatrix

__all__ = ["Phase", "PhasedWorkload", "load_phased", "save_phased"]

_NAME_MAX = 128


@dataclass(frozen=True)
class Phase:
    """One named step of a phased workload.

    Parameters
    ----------
    name:
        Phase label (``"dispatch"``, ``"combine"``, ...).  Shows up in the
        per-phase selection tables, the Chrome trace and the adaptive
        figure; must be non-empty and contain no newlines.
    matrix:
        The :class:`~repro.workloads.matrix.TrafficMatrix` exchanged in
        this phase.
    repeats:
        How many back-to-back times the exchange runs (a positive int) —
        e.g. the number of microbatches per iteration.
    """

    name: str
    matrix: TrafficMatrix
    repeats: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or len(self.name) > _NAME_MAX:
            raise ConfigurationError(
                f"phase name must be a non-empty string of at most {_NAME_MAX} "
                f"characters, got {self.name!r}"
            )
        if any(ch in self.name for ch in "\n\r"):
            raise ConfigurationError(f"phase name must not contain newlines: {self.name!r}")
        if not isinstance(self.matrix, TrafficMatrix):
            raise ConfigurationError(
                f"phase {self.name!r} needs a TrafficMatrix, got {type(self.matrix).__name__}"
            )
        if isinstance(self.repeats, bool) or not isinstance(self.repeats, int):
            raise ConfigurationError(
                f"phase {self.name!r} repeats must be an integer, got {self.repeats!r}"
            )
        if self.repeats <= 0:
            raise ConfigurationError(
                f"phase {self.name!r} repeats must be positive, got {self.repeats}"
            )

    @property
    def total_bytes(self) -> int:
        """Bytes this phase moves across all repeats."""
        return self.matrix.total_bytes * self.repeats

    def payload(self) -> dict:
        """Canonical JSON-compatible form of the phase (cache identity)."""
        return {
            "name": self.name,
            "repeats": self.repeats,
            "pattern": self.matrix.pattern,
            "bytes": self.matrix.bytes.tolist(),
        }

    def describe(self) -> str:
        reps = f" x{self.repeats}" if self.repeats != 1 else ""
        return f"{self.name}{reps}: {self.matrix.describe()}"


class PhasedWorkload:
    """An ordered, validated sequence of :class:`Phase` objects.

    All phases must describe the same number of ranks; the workload as a
    whole then has a single ``nprocs`` the runner, selector and
    :class:`~repro.runtime.spec.PointSpec` agree on.
    """

    __slots__ = ("phases", "_payload_json", "_digest")

    def __init__(self, phases: Iterable[Phase]) -> None:
        items = tuple(phases)
        if not items:
            raise ConfigurationError("a phased workload needs at least one phase")
        for phase in items:
            if not isinstance(phase, Phase):
                raise ConfigurationError(
                    f"phased workload entries must be Phase objects, got "
                    f"{type(phase).__name__}"
                )
        nprocs = items[0].matrix.nprocs
        for phase in items[1:]:
            if phase.matrix.nprocs != nprocs:
                raise ConfigurationError(
                    f"all phases must have the same rank count: phase "
                    f"{phase.name!r} has {phase.matrix.nprocs} ranks, "
                    f"expected {nprocs}"
                )
        self.phases = items
        self._payload_json: str | None = None
        self._digest: str | None = None

    # -- sizes ---------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Rank count shared by every phase."""
        return self.phases[0].matrix.nprocs

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_bytes(self) -> int:
        """Bytes moved by the whole workload (all phases, all repeats)."""
        return sum(phase.total_bytes for phase in self.phases)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(phase.name for phase in self.phases)

    # -- identity ------------------------------------------------------------
    def payload(self) -> dict:
        """JSON-compatible canonical form (the on-disk and cache-key shape)."""
        return {
            "nprocs": self.nprocs,
            "phases": [phase.payload() for phase in self.phases],
        }

    def canonical(self) -> str:
        """Canonical JSON string: sorted keys, no whitespace — hash input."""
        if self._payload_json is None:
            self._payload_json = json.dumps(
                self.payload(), sort_keys=True, separators=(",", ":")
            )
        return self._payload_json

    def digest(self) -> str:
        """SHA-256 of the canonical form: pure function of the content."""
        if self._digest is None:
            self._digest = sha256(self.canonical().encode("utf-8")).hexdigest()
        return self._digest

    def __eq__(self, other) -> bool:
        if not isinstance(other, PhasedWorkload):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    # -- views ---------------------------------------------------------------
    def combined_matrix(self) -> TrafficMatrix:
        """The single matrix summing every phase (repeats included).

        This is what a phase-blind tool sees: the static selector prices
        candidates against it, and it anchors the byte-conservation
        property the ingestion chain is tested for.
        """
        total = sum(
            phase.matrix.bytes * phase.repeats for phase in self.phases
        )
        return TrafficMatrix(total, pattern="phased-total")

    def describe(self) -> str:
        steps = "; ".join(phase.describe() for phase in self.phases)
        return (
            f"phased workload: {self.nprocs} ranks, {self.num_phases} phase(s), "
            f"{self.total_bytes} B total [{steps}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PhasedWorkload {self.nprocs} ranks, {self.num_phases} phase(s)>"

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_payload(cls, obj: Any) -> "PhasedWorkload":
        """Rebuild a workload from :meth:`payload` output (or its JSON text)."""
        if isinstance(obj, str):
            try:
                obj = json.loads(obj)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"phased workload is not valid JSON: {exc}"
                ) from exc
        if not isinstance(obj, dict) or "phases" not in obj:
            raise ConfigurationError(
                "a phased workload payload must be an object with a 'phases' list"
            )
        raw_phases = obj["phases"]
        if not isinstance(raw_phases, Sequence) or isinstance(raw_phases, (str, bytes)):
            raise ConfigurationError("'phases' must be a list of phase objects")
        phases = []
        for entry in raw_phases:
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"phase entries must be objects, got {type(entry).__name__}"
                )
            try:
                matrix = TrafficMatrix(
                    entry["bytes"], pattern=entry.get("pattern", "trace")
                )
            except KeyError as exc:
                raise ConfigurationError(
                    "phase entries must carry a 'bytes' matrix"
                ) from exc
            phases.append(
                Phase(
                    name=entry.get("name", f"phase{len(phases)}"),
                    matrix=matrix,
                    repeats=entry.get("repeats", 1),
                )
            )
        workload = cls(phases)
        declared = obj.get("nprocs")
        if declared is not None and declared != workload.nprocs:
            raise ConfigurationError(
                f"phased workload declares {declared} ranks but its phases "
                f"have {workload.nprocs}"
            )
        return workload


def load_phased(source) -> PhasedWorkload:
    """Load a :class:`PhasedWorkload` from a path, JSON string or dict."""
    if isinstance(source, PhasedWorkload):
        return source
    if isinstance(source, dict):
        return PhasedWorkload.from_payload(source)
    if isinstance(source, (str, os.PathLike)):
        text = str(source)
        is_path = isinstance(source, os.PathLike) or os.path.exists(text)
        if is_path or not text.lstrip().startswith("{"):
            try:
                with open(source, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot read phased workload file {source!r}: {exc}"
                ) from exc
        return PhasedWorkload.from_payload(text)
    raise ConfigurationError(
        f"cannot load a phased workload from {type(source).__name__}; "
        "expected a path, JSON string or dict"
    )


def save_phased(workload: PhasedWorkload, path) -> None:
    """Write ``workload`` to ``path`` in its canonical JSON form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(workload.canonical())
        handle.write("\n")
