"""JSON persistence for traffic matrices (trace replay).

Two interchangeable on-disk forms are supported:

* a *dense* object — ``{"pattern": "...", "nprocs": p, "bytes": [[...], ...]}``;
* a *record list* — ``[{"src": s, "dst": d, "bytes": n}, ...]`` (sparse,
  the natural dump format of an application-side communication profiler);
  ``nprocs`` is inferred from the largest rank mentioned unless wrapped as
  ``{"nprocs": p, "records": [...]}``.

:func:`load_trace` accepts a path, a JSON string, or the already-decoded
Python objects; :func:`save_trace` always writes the dense form.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.matrix import TrafficMatrix

__all__ = ["load_trace", "save_trace"]


def _matrix_from_records(records: list, nprocs: int | None) -> TrafficMatrix:
    if not records:
        raise ConfigurationError("a trace record list must contain at least one record")
    try:
        triples = [(int(r["src"]), int(r["dst"]), int(r["bytes"])) for r in records]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            "trace records must be objects with 'src', 'dst' and 'bytes' keys"
        ) from exc
    # Validate *before* sizing the matrix: a record list whose ranks are all
    # negative would otherwise compute a non-positive size and surface as a
    # raw numpy ValueError, and a non-integer nprocs as a raw TypeError from
    # the max_rank comparison.
    for s, d, _ in triples:
        if s < 0 or d < 0:
            raise ConfigurationError(
                f"trace record ranks must be non-negative, got src={s} dst={d}"
            )
    if nprocs is not None and (isinstance(nprocs, bool) or not isinstance(nprocs, int)):
        raise ConfigurationError(
            f"trace 'nprocs' must be an integer, got {nprocs!r}"
        )
    max_rank = max(max(s, d) for s, d, _ in triples)
    size = (max_rank + 1) if nprocs is None else nprocs
    if max_rank >= size:
        raise ConfigurationError(
            f"trace mentions rank {max_rank} but declares only {size} ranks"
        )
    matrix = np.zeros((size, size), dtype=np.int64)
    for s, d, n in triples:
        matrix[s, d] += n
    return TrafficMatrix(matrix, pattern="trace")


def _matrix_from_object(obj: Any) -> TrafficMatrix:
    if isinstance(obj, list):
        return _matrix_from_records(obj, nprocs=None)
    if isinstance(obj, dict):
        if "records" in obj:
            return _matrix_from_records(obj["records"], nprocs=obj.get("nprocs"))
        if "bytes" in obj:
            matrix = TrafficMatrix(obj["bytes"], pattern=obj.get("pattern", "trace"))
            declared = obj.get("nprocs")
            if declared is not None and declared != matrix.nprocs:
                raise ConfigurationError(
                    f"trace declares {declared} ranks but the matrix has {matrix.nprocs}"
                )
            return matrix
    raise ConfigurationError(
        "a trace must be a record list or an object with a 'bytes' matrix or 'records' list"
    )


def load_trace(source) -> TrafficMatrix:
    """Load a :class:`TrafficMatrix` from a trace (path, JSON string, dict or list)."""
    if isinstance(source, TrafficMatrix):
        return source
    if isinstance(source, (dict, list)):
        return _matrix_from_object(source)
    if isinstance(source, (str, os.PathLike)):
        text = str(source)
        # An existing file (or anything path-like) always wins over inline
        # JSON: a real path must be read even when it happens to look like
        # JSON, and an unreadable path must report a read error, not a
        # confusing parse error.
        is_path = isinstance(source, os.PathLike) or os.path.exists(text)
        if is_path or not text.lstrip().startswith(("{", "[")):
            try:
                with open(source, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                raise ConfigurationError(f"cannot read trace file {source!r}: {exc}") from exc
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"trace is not valid JSON: {exc}") from exc
        return _matrix_from_object(obj)
    raise ConfigurationError(
        f"cannot load a trace from {type(source).__name__}; "
        "expected a path, JSON string, dict or record list"
    )


def save_trace(matrix: TrafficMatrix, path) -> None:
    """Write ``matrix`` to ``path`` in the dense JSON trace form."""
    payload = {
        "pattern": matrix.pattern,
        "nprocs": matrix.nprocs,
        "bytes": matrix.bytes.tolist(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
