"""The :class:`TrafficMatrix` abstraction: who sends how much to whom.

A traffic matrix is the dense description of one non-uniform all-to-all
exchange: entry ``[s, d]`` is the number of *bytes* rank ``s`` sends to rank
``d``.  The uniform exchange the paper benchmarks is the special case where
every entry equals ``msg_bytes``; MoE token shuffles, ragged FFT transposes
and sparse neighbourhood exchanges are all just other matrices.

The class is deliberately small: it validates the matrix once, exposes the
aggregate quantities the cost model and reports need (total bytes, skew,
per-node aggregation), and converts bytes to element counts for a given
dtype so the simulated :mod:`repro.core.alltoall` v-algorithms can run it.
Generators for common patterns live in :mod:`repro.workloads.generators`;
JSON (trace) persistence lives in :mod:`repro.workloads.traceio`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """Per-(source, destination) byte counts of one all-to-all style exchange.

    Parameters
    ----------
    bytes_matrix:
        Square array-like; entry ``[s, d]`` is the number of bytes rank ``s``
        sends to rank ``d``.  Entries must be non-negative integers (the
        diagonal is allowed: a rank may "send" to itself, which costs a local
        copy exactly like the uniform ``MPI_Alltoall`` self-block).
    pattern:
        Name of the generator that produced the matrix (``"uniform"``,
        ``"skewed-moe"``, ...); purely descriptive.
    """

    __slots__ = ("bytes", "pattern")

    def __init__(self, bytes_matrix, *, pattern: str = "custom") -> None:
        matrix = np.asarray(bytes_matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"a traffic matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0:
            raise ConfigurationError("a traffic matrix needs at least one rank")
        if not np.issubdtype(matrix.dtype, np.integer):
            rounded = np.rint(matrix)
            if not np.allclose(matrix, rounded):
                raise ConfigurationError("traffic matrix entries must be whole byte counts")
            matrix = rounded
        matrix = matrix.astype(np.int64, copy=True)
        if (matrix < 0).any():
            raise ConfigurationError("traffic matrix entries must be non-negative")
        self.bytes = matrix
        self.pattern = pattern

    # -- sizes ---------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Number of ranks the matrix describes."""
        return self.bytes.shape[0]

    @property
    def total_bytes(self) -> int:
        """Total bytes moved by the exchange (sum of every entry)."""
        return int(self.bytes.sum())

    def send_bytes(self, rank: int) -> int:
        """Bytes ``rank`` sends (its row sum)."""
        return int(self.bytes[rank].sum())

    def recv_bytes(self, rank: int) -> int:
        """Bytes ``rank`` receives (its column sum)."""
        return int(self.bytes[:, rank].sum())

    @property
    def send_totals(self) -> np.ndarray:
        """Row sums: bytes each rank sends."""
        return self.bytes.sum(axis=1)

    @property
    def recv_totals(self) -> np.ndarray:
        """Column sums: bytes each rank receives."""
        return self.bytes.sum(axis=0)

    @property
    def max_pair_bytes(self) -> int:
        """Largest single (source, destination) transfer."""
        return int(self.bytes.max())

    # -- shape statistics ------------------------------------------------------
    @property
    def skew(self) -> float:
        """Load imbalance: the worse of the send-side and receive-side imbalance.

        Each side's imbalance is the max per-rank total over the mean
        (1.0 = perfectly balanced).  A hot-expert MoE matrix is skewed on
        the receive side even though every source sends the same volume, so
        both directions matter.
        """
        worst = 1.0
        for totals in (self.send_totals, self.recv_totals):
            mean = float(totals.mean())
            if mean > 0.0:
                worst = max(worst, float(totals.max()) / mean)
        return worst

    @property
    def density(self) -> float:
        """Fraction of (source, destination) pairs with non-zero traffic."""
        return float(np.count_nonzero(self.bytes)) / float(self.bytes.size)

    @property
    def is_uniform(self) -> bool:
        """True when every entry carries the same number of bytes."""
        return bool((self.bytes == self.bytes.flat[0]).all())

    # -- aggregation -----------------------------------------------------------
    def node_bytes(self, ppn: int) -> np.ndarray:
        """Aggregate to a node-level matrix for a blockwise placement of ``ppn`` ranks per node.

        Entry ``[m, n]`` of the result is the total bytes the ranks of node
        ``m`` send to the ranks of node ``n`` — the quantity the NIC
        injection model cares about.
        """
        if ppn <= 0 or self.nprocs % ppn != 0:
            raise ConfigurationError(
                f"ppn={ppn} does not evenly divide the {self.nprocs} ranks of the matrix"
            )
        nodes = self.nprocs // ppn
        return self.bytes.reshape(nodes, ppn, nodes, ppn).sum(axis=(1, 3))

    def inter_node_bytes(self, ppn: int) -> int:
        """Total bytes crossing the network for a blockwise placement."""
        node_matrix = self.node_bytes(ppn)
        return int(node_matrix.sum() - np.trace(node_matrix))

    # -- conversion -------------------------------------------------------------
    def item_counts(self, dtype=np.uint8) -> np.ndarray:
        """Per-pair element counts for exchanging this matrix with buffers of ``dtype``.

        Every entry must be a multiple of the dtype's item size (for the
        default ``uint8`` payload this is always true).
        """
        itemsize = np.dtype(dtype).itemsize
        if itemsize > 1 and (self.bytes % itemsize).any():
            raise ConfigurationError(
                f"traffic matrix entries are not all multiples of the {itemsize}-byte "
                f"dtype {np.dtype(dtype)}"
            )
        return self.bytes // itemsize

    def scaled(self, factor: int) -> "TrafficMatrix":
        """A new matrix with every entry multiplied by a positive integer factor."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return TrafficMatrix(self.bytes * int(factor), pattern=self.pattern)

    def with_zero_rows(self, rows) -> "TrafficMatrix":
        """A new matrix with the given source rows zeroed out.

        Degenerate-case helper for conformance fuzzing: an empty send row is
        a rank that participates in the collective but contributes no bytes,
        which every v-algorithm must handle without deadlocking or
        corrupting the packed layout.
        """
        zeroed = self.bytes.copy()
        for row in rows:
            if not 0 <= row < self.nprocs:
                raise ConfigurationError(
                    f"row {row} out of range for a {self.nprocs}-rank matrix"
                )
            zeroed[row, :] = 0
        return TrafficMatrix(zeroed, pattern=f"{self.pattern}+zero-rows")

    # -- description -------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.pattern}: {self.nprocs} ranks, {self.total_bytes} B total, "
            f"skew {self.skew:.2f}x, density {self.density:.2f}"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return np.array_equal(self.bytes, other.bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrafficMatrix {self.describe()}>"
