"""Symmetry analysis of traffic matrices: which ranks are interchangeable?

The folding layer (:mod:`repro.machine.folding`) can simulate one node
standing in for all of them — but only when the traffic itself has the
matching symmetry.  This module decides that question for an explicit
:class:`~repro.workloads.matrix.TrafficMatrix`: it partitions the ranks into
equivalence classes and, when the partition is non-trivial, emits a
*certificate* saying exactly which invariance was checked.

The checked invariance is **node rotation**: ``M[s, d] == M[s + ppn, d +
ppn]`` with rank arithmetic modulo ``nprocs``.  That is precisely the
symmetry the folded engine exploits (representative ranks on node 0, one per
local index), and it is satisfied by the patterns the paper's workloads are
built from — uniform exchanges, ppn-aligned block-diagonal tiles,
neighbor-shift rings, and per-node-leader funnels.  Anything else (skewed
MoE routing, incast hotspots, arbitrary sparse matrices) degrades to
singleton classes: every rank is its own class and the job must be simulated
in full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.folding import FoldCertificate
from repro.workloads.matrix import TrafficMatrix

__all__ = ["RankClass", "SymmetryReport", "analyze_symmetry"]


@dataclass(frozen=True)
class RankClass:
    """One equivalence class of interchangeable ranks."""

    #: The rank the engine simulates on behalf of the class (smallest member).
    representative: int
    #: All member ranks, ascending; the representative is ``members[0]``.
    members: tuple[int, ...]

    @property
    def multiplicity(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class SymmetryReport:
    """Partition of a job's ranks into role-equivalence classes."""

    #: Total logical ranks analysed.
    nprocs: int
    #: Processes per node the partition was computed against.
    ppn: int
    #: Pattern family: ``uniform`` / ``block-diagonal`` / ``neighbor-shift``
    #: / ``per-node-leader`` / ``node-cyclic`` when foldable, ``asymmetric``
    #: otherwise.
    kind: str
    #: Whether the node-rotation invariance holds (classes = local ranks).
    foldable: bool
    #: The partition itself; ``ppn`` classes when foldable, ``nprocs``
    #: singletons when not.
    classes: tuple[RankClass, ...]
    #: Human-readable statement of the invariance checked (or the witness
    #: pair that broke it).
    certificate: str

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def multiplicity(self) -> int:
        """Common class size (1 for the singleton fallback)."""
        return self.classes[0].multiplicity if self.classes else 1

    def fold_certificate(self) -> FoldCertificate:
        """The compact certificate carried by a folded process map."""
        if not self.foldable:
            raise ConfigurationError(
                f"traffic is not foldable ({self.certificate}); "
                "simulate it unfolded instead"
            )
        return FoldCertificate(kind=self.kind, detail=self.certificate)

    def describe(self) -> str:
        return (
            f"{self.num_classes} classes over {self.nprocs} ranks "
            f"({self.kind}; multiplicity {self.multiplicity}): {self.certificate}"
        )


def _singletons(nprocs: int) -> tuple[RankClass, ...]:
    return tuple(RankClass(r, (r,)) for r in range(nprocs))


def _local_rank_classes(nprocs: int, ppn: int) -> tuple[RankClass, ...]:
    num_nodes = nprocs // ppn
    return tuple(
        RankClass(q, tuple(q + j * ppn for j in range(num_nodes)))
        for q in range(ppn)
    )


def _classify(arr: np.ndarray, ppn: int) -> str:
    """Pattern family of a node-rotation-invariant matrix."""
    nprocs = arr.shape[0]
    if np.all(arr == arr[0, 0]):
        return "uniform"
    # Block-diagonal: all traffic stays inside ppn-aligned node tiles.
    node = np.arange(nprocs) // ppn
    off_node = node[:, None] != node[None, :]
    if not np.any(arr[off_node]):
        return "block-diagonal"
    # Per-node-leader: only local rank 0 sends or receives across nodes.
    local = np.arange(nprocs) % ppn
    nonleader = local != 0
    cross = arr * off_node
    if not np.any(cross[nonleader, :]) and not np.any(cross[:, nonleader]):
        return "per-node-leader"
    # Circulant: entries depend only on (d - s) mod nprocs.
    idx = (np.arange(nprocs)[None, :] - np.arange(nprocs)[:, None]) % nprocs
    if np.array_equal(arr, arr[0][idx]):
        return "neighbor-shift"
    return "node-cyclic"


def analyze_symmetry(matrix: TrafficMatrix | np.ndarray, ppn: int) -> SymmetryReport:
    """Partition the ranks of ``matrix`` into node-rotation equivalence classes.

    Parameters
    ----------
    matrix:
        The per-(source, destination) byte counts, as a
        :class:`~repro.workloads.matrix.TrafficMatrix` or a square array.
    ppn:
        Processes per node of the placement the job will run with.  The
        rotation step is one node, i.e. ``ppn`` rank positions.
    """
    arr = matrix.bytes if isinstance(matrix, TrafficMatrix) else np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"traffic matrix must be square, got shape {arr.shape}")
    nprocs = arr.shape[0]
    if ppn <= 0:
        raise ConfigurationError(f"ppn must be positive, got {ppn}")
    if nprocs % ppn != 0:
        return SymmetryReport(
            nprocs=nprocs, ppn=ppn, kind="asymmetric", foldable=False,
            classes=_singletons(nprocs),
            certificate=(
                f"{nprocs} ranks do not tile into nodes of ppn={ppn}; "
                "no node rotation exists"
            ),
        )
    num_nodes = nprocs // ppn
    rolled = np.roll(np.roll(arr, ppn, axis=0), ppn, axis=1)
    if not np.array_equal(rolled, arr):
        witness = np.argwhere(rolled != arr)[0]
        s, d = int(witness[0]), int(witness[1])
        return SymmetryReport(
            nprocs=nprocs, ppn=ppn, kind="asymmetric", foldable=False,
            classes=_singletons(nprocs),
            certificate=(
                f"not invariant under rank rotation by ppn={ppn}: "
                f"M[{s}, {d}] = {int(arr[s, d])} but the rotated matrix "
                f"carries {int(rolled[s, d])} there; ranks fall back to "
                "singleton classes"
            ),
        )
    kind = _classify(arr, ppn)
    return SymmetryReport(
        nprocs=nprocs, ppn=ppn, kind=kind, foldable=True,
        classes=_local_rank_classes(nprocs, ppn),
        certificate=(
            f"{kind} traffic invariant under the rank rotation by ppn={ppn} "
            f"(one node): M[s, d] == M[s+{ppn}, d+{ppn}] for all pairs, so the "
            f"{nprocs} ranks partition into {ppn} classes of the "
            f"{num_nodes} ranks sharing a local index"
        ),
    )
