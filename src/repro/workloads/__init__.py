"""Non-uniform traffic workloads for the all-to-all stack.

The seed reproduction simulates the paper's *uniform* exchange — every rank
sends the same ``msg_bytes`` to every peer.  The workloads that motivate the
paper (MoE token shuffles with skewed expert routing, ragged FFT/matrix
transposes, neighbourhood exchanges) are irregular; this package makes them
first-class:

* :class:`~repro.workloads.matrix.TrafficMatrix` — dense per-(source,
  destination) byte counts with the aggregate views (totals, skew, per-node
  traffic) the runner, cost model and benchmark harness consume;
* :mod:`~repro.workloads.generators` — pattern generators (``uniform``,
  ``skewed_moe``, ``block_diagonal``, ``zipf``, ``sparse``, ``incast``,
  ``neighbor_shift``, ``from_trace``) behind the
  :data:`~repro.workloads.generators.PATTERNS` registry;
* :mod:`~repro.workloads.traceio` — JSON trace replay and persistence.

Downstream entry points: :func:`repro.core.runner.run_workload` simulates a
matrix with the v-capable algorithms (``alltoallv`` semantics),
:func:`repro.model.predict.predict_workload_time` prices one analytically,
:meth:`repro.bench.harness.BenchmarkHarness.workload_point` times one
through either engine, and ``repro-bench workload`` drives it all from the
command line.

Quickstart::

    from repro.workloads import skewed_moe
    from repro.machine import ProcessMap, tiny_cluster
    from repro.core import run_workload

    pmap = ProcessMap(tiny_cluster(num_nodes=4), ppn=8)
    matrix = skewed_moe(pmap.nprocs, msg_bytes=64, concentration=8.0)
    outcome = run_workload("node-aware", pmap, matrix)
    print(outcome.summary())
"""

from repro.workloads.generators import (
    PATTERNS,
    block_diagonal,
    from_trace,
    incast,
    list_patterns,
    make_pattern,
    neighbor_shift,
    self_only,
    skewed_moe,
    sparse,
    uniform,
    zipf,
)
from repro.workloads.matrix import TrafficMatrix
from repro.workloads.phased import Phase, PhasedWorkload, load_phased, save_phased
from repro.workloads.symmetry import RankClass, SymmetryReport, analyze_symmetry
from repro.workloads.traceio import load_trace, save_trace

__all__ = [
    "TrafficMatrix",
    "Phase",
    "PhasedWorkload",
    "load_phased",
    "save_phased",
    "RankClass",
    "SymmetryReport",
    "analyze_symmetry",
    "PATTERNS",
    "uniform",
    "skewed_moe",
    "block_diagonal",
    "zipf",
    "sparse",
    "incast",
    "neighbor_shift",
    "self_only",
    "from_trace",
    "make_pattern",
    "list_patterns",
    "load_trace",
    "save_trace",
]
