"""Failure reports and scenario shrinking for the conformance subsystem.

When the differential runner finds a mismatch it does not just point at the
original (possibly 24-rank, multi-kilobyte) scenario: it greedily *shrinks*
it — halving the node count, the ranks per node and the traffic volume, as
long as the reduced scenario still fails the same way — and reports the
minimal reproducer together with the seed of the original scenario, so the
failure can be replayed with ``repro-bench verify --seed <seed> --count 1``
and debugged at the smallest scale that exhibits it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ConfigurationError
from repro.workloads import TrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle: differential imports report
    from repro.verify.differential import AlgorithmConfig
    from repro.verify.scenario import Scenario

__all__ = ["FailureReport", "shrink_scenario", "format_failure"]

#: Upper bound on shrinking re-runs per failure, so a pathological failure
#: cannot stall the whole sweep.
MAX_SHRINK_RUNS = 40


@dataclass
class FailureReport:
    """One conformance failure, with an optional minimal reproducer."""

    #: ``"mismatch"`` (wrong bytes), ``"timing"`` (non-finite / negative /
    #: non-monotone), ``"error"`` (crash on a valid scenario), or
    #: ``"inapplicable"`` (not a failure; filtered out by the runner).
    kind: str
    #: Seed of the original scenario — the reproduction handle.
    seed: int
    digest: str
    #: ``describe()`` of the failing algorithm configuration.
    algorithm: str
    detail: str
    #: Full payload of the original scenario (self-contained JSON).
    scenario_payload: dict = field(default_factory=dict)
    #: Payload of the smallest shrunken scenario that still fails, if any.
    minimal_payload: dict | None = None
    #: Algorithm configuration of the minimal reproducer (options may have
    #: been clamped while the placement shrank).
    minimal_algorithm: str | None = None
    #: Set when a *reduced* scenario crashed the checker outright during
    #: shrinking (``"ExceptionType: message"``).  The crashing reduction is
    #: adopted as the reproducer — a crash at a smaller scale is a finding,
    #: not a dead end.
    shrink_crash: str | None = None

    @property
    def command(self) -> str:
        """CLI invocation that regenerates and re-verifies the original scenario."""
        return f"repro-bench verify --seed {self.seed} --count 1"


def format_failure(failure: FailureReport) -> str:
    """Render one failure as a multi-line report for the CLI."""
    lines = [
        f"FAILURE [{failure.kind}] scenario {failure.digest[:12]} (seed {failure.seed})",
        f"  algorithm: {failure.algorithm}",
        f"  detail:    {failure.detail}",
        f"  reproduce: {failure.command}",
    ]
    payload = failure.minimal_payload
    if payload is not None:
        shape = f"{payload['num_nodes']} nodes x {payload['ppn']} ppn"
        traffic = (
            f"{payload['msg_bytes']} B uniform"
            if payload.get("msg_bytes") is not None
            else f"{payload['pattern']} matrix"
        )
        lines.append(
            f"  minimal reproducer: {failure.minimal_algorithm} on {shape}, {traffic}"
        )
        lines.append(f"  minimal scenario JSON: {json.dumps(payload, sort_keys=True)}")
    if failure.shrink_crash is not None:
        lines.append(
            f"  shrink crash: the reduced scenario crashed the checker with "
            f"{failure.shrink_crash}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _clamped_config(config: "AlgorithmConfig", ppn: int) -> "AlgorithmConfig":
    """Re-fit group-size options to a reduced ppn (gcd keeps them divisors)."""
    from repro.verify.differential import AlgorithmConfig

    options = config.as_dict()
    for key in ("procs_per_group", "procs_per_leader"):
        if key in options and isinstance(options[key], int):
            options[key] = math.gcd(int(options[key]), ppn) or 1
    return AlgorithmConfig.make(config.name, **options)


def _truncated_matrix(matrix: TrafficMatrix, nprocs: int) -> TrafficMatrix:
    return TrafficMatrix(matrix.bytes[:nprocs, :nprocs], pattern=matrix.pattern)


def _halved_matrix(matrix: TrafficMatrix) -> TrafficMatrix:
    return TrafficMatrix(matrix.bytes // 2, pattern=matrix.pattern)


def _reductions(scenario: "Scenario") -> Iterator["Scenario"]:
    """Candidate one-step reductions of ``scenario``, most aggressive first."""
    if scenario.num_nodes > 1:
        nodes = scenario.num_nodes // 2
        matrix = (
            None if scenario.matrix is None
            else _truncated_matrix(scenario.matrix, nodes * scenario.ppn)
        )
        yield replace(scenario, num_nodes=nodes, matrix=matrix)
    if scenario.ppn > 1:
        ppn = scenario.ppn // 2
        matrix = (
            None if scenario.matrix is None
            else _truncated_matrix(scenario.matrix, scenario.num_nodes * ppn)
        )
        yield replace(
            scenario, ppn=ppn, matrix=matrix,
            group_size=math.gcd(scenario.group_size, ppn) or 1,
        )
    if scenario.msg_bytes is not None and scenario.msg_bytes > 1:
        yield replace(scenario, msg_bytes=scenario.msg_bytes // 2)
    if scenario.matrix is not None and scenario.matrix.max_pair_bytes > 1:
        yield replace(scenario, matrix=_halved_matrix(scenario.matrix))


def shrink_scenario(
    scenario: "Scenario",
    config: "AlgorithmConfig",
    still_fails: Callable[["Scenario", "AlgorithmConfig"], bool],
    *,
    max_runs: int = MAX_SHRINK_RUNS,
) -> tuple["Scenario", "AlgorithmConfig", str | None]:
    """Greedily reduce ``scenario`` while ``still_fails`` holds.

    ``still_fails(candidate, candidate_config)`` re-runs only the failing
    configuration (clamped to the candidate's shape) and returns whether the
    same kind of failure persists.  A candidate that raises
    :class:`~repro.errors.ConfigurationError` is a shape this configuration
    legitimately cannot run — it is skipped.  Any *other* exception means
    the checker crashed on a valid reduced scenario; that reduction is
    adopted as the reproducer (a crash at a smaller scale is a finding, not
    a dead end) and the crash is reported in the third element of the
    return value.

    Returns ``(scenario, config, crash_detail)`` — the smallest pair found
    (the original pair when no reduction reproduces the failure or the run
    budget is exhausted) plus the last crash observed during shrinking, or
    ``None`` when every reduction ran cleanly.
    """
    current, current_config = scenario, config
    crash_detail: str | None = None
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in _reductions(current):
            candidate_config = _clamped_config(config, candidate.ppn)
            runs += 1
            try:
                failing = still_fails(candidate, candidate_config)
            except ConfigurationError:
                # The reduced shape is invalid for this configuration
                # (e.g. a group size the smaller ppn cannot host); not a
                # usable reproducer — try the next reduction.
                failing = False
            except Exception as exc:
                # The checker crashed outright on a valid reduced scenario.
                crash_detail = f"{type(exc).__name__}: {exc}"
                failing = True
            if failing:
                current, current_config = candidate, candidate_config
                progress = True
                break
            if runs >= max_runs:
                break
    return current, current_config, crash_detail
