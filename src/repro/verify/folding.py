"""Differential fold gate: prove folded runs reproduce full simulations.

Symmetry folding (:mod:`repro.machine.folding`) simulates one node's ranks
standing in for the whole machine.  That is only worth anything if the folded
timeline is *the same timeline* — so this module runs every check twice, once
folded and once at full width, and compares:

* **Exact-equivalence class** — on a contention-free fabric (full bisection,
  the preset default) the folded run is **bit-identical**: same ``elapsed``,
  same per-representative finish times, same per-level traffic totals once
  scaled by the multiplicity, and independently-validated receive contents on
  both sides.  The gate asserts float equality, not closeness.
* **Aggregate-equivalence class** — on a contended fabric
  (:class:`~repro.netsim.fabric.FatTreeFabric` with oversubscription > 1)
  the folded run prices shared links through
  :class:`~repro.netsim.fabric.FoldedFabricView`, which restores the absent
  nodes' traffic with per-link multipliers.  Per-link ``busy_time``/``bytes``
  accounting is exact; elapsed reproduces per-link saturation but not
  per-message interleaving, so the gate checks relative elapsed agreement
  within :data:`FABRIC_REL_TOL` instead of bit equality (measured deviation
  is ≤ 0.26 across 4–32 nodes for pairwise/node-aware/bruck).

Known limitation: :class:`~repro.netsim.fabric.DragonflyFabric` routes every
cross-group message over three FIFO links, and full runs there are dominated
by emergent convoy (head-of-line) compounding — elapsed several times above
any per-link load bound.  A folded timeline reproduces the load bounds but
not the convoying, so dragonfly is excluded from the tolerance gate and
documented as outside the folding equivalence envelope.

A second, cheaper check (:func:`model_crosscheck`) runs *folded* simulations
at machine scales no full simulation can reach and compares them against the
closed-form LogGP model (:func:`repro.model.predict.predict_time`) — a
mutual sanity bound between the two independent cost paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.alltoall.registry import list_algorithms
from repro.core.runner import run_alltoall, run_workload
from repro.machine.process_map import ProcessMap
from repro.machine.systems import tiny_cluster
from repro.model.predict import predict_time
from repro.netsim.fabric import FatTreeFabric
from repro.workloads.generators import block_diagonal, neighbor_shift, uniform

__all__ = [
    "FABRIC_REL_TOL",
    "FoldGateRecord",
    "FoldGateReport",
    "ModelCrossPoint",
    "compare_alltoall_fold",
    "compare_workload_fold",
    "model_crosscheck",
    "run_fold_gate",
]

#: Relative elapsed tolerance for the aggregate-equivalence (contended
#: fabric) class.  Exact-class comparisons ignore this and demand equality.
FABRIC_REL_TOL = 0.35

#: Message sizes exercised per algorithm: one eager, one rendezvous (the
#: testing parameters put the eager/rendezvous switch at 16 KiB).
_GATE_SIZES = (64, 32768)


@dataclass
class FoldGateRecord:
    """One folded-vs-full comparison."""

    #: What was compared (algorithm, shape, size, workload kind).
    label: str
    #: ``"exact"`` (bit-identical demanded) or ``"aggregate"`` (tolerance).
    equivalence: str
    full_elapsed: float
    folded_elapsed: float
    #: Whether elapsed/finish-times matched under the class's criterion.
    timings_ok: bool
    #: Whether per-level (messages, bytes) totals matched exactly.
    traffic_ok: bool
    #: Whether both runs validated their receive buffers.
    contents_ok: bool
    #: Fold multiplicity of the folded run.
    multiplicity: int

    @property
    def ok(self) -> bool:
        return self.timings_ok and self.traffic_ok and self.contents_ok

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.label} ({self.equivalence}): "
            f"full={self.full_elapsed:.6e}s folded={self.folded_elapsed:.6e}s "
            f"x{self.multiplicity}"
        )


@dataclass
class FoldGateReport:
    """All records from one gate run."""

    records: list[FoldGateRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def failures(self) -> list[FoldGateRecord]:
        return [r for r in self.records if not r.ok]

    def describe(self) -> str:
        lines = [r.describe() for r in self.records]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"fold gate: {verdict} ({len(self.records) - len(self.failures)}"
            f"/{len(self.records)} comparisons)"
        )
        return "\n".join(lines)


def _compare(full, folded, label: str, equivalence: str) -> FoldGateRecord:
    if equivalence == "exact":
        timings_ok = full.elapsed == folded.elapsed
        if timings_ok and full.job is not None and folded.job is not None:
            ppn = folded.ppn
            timings_ok = full.job.finish_times[:ppn] == folded.job.finish_times
    else:
        scale = max(abs(full.elapsed), abs(folded.elapsed), 1e-30)
        timings_ok = abs(full.elapsed - folded.elapsed) <= FABRIC_REL_TOL * scale
    traffic_ok = full.traffic_by_level == folded.traffic_by_level
    contents_ok = full.correct and folded.correct
    multiplicity = folded.fold["multiplicity"] if folded.fold else 1
    return FoldGateRecord(
        label=label,
        equivalence=equivalence,
        full_elapsed=full.elapsed,
        folded_elapsed=folded.elapsed,
        timings_ok=timings_ok,
        traffic_ok=traffic_ok,
        contents_ok=contents_ok,
        multiplicity=multiplicity,
    )


def compare_alltoall_fold(
    algorithm: str,
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    equivalence: str = "exact",
    engine_jobs: int = 1,
) -> FoldGateRecord:
    """Run one uniform exchange folded and unfolded, compare the timelines."""
    full = run_alltoall(algorithm, pmap, msg_bytes, fold="off", engine_jobs=engine_jobs)
    folded = run_alltoall(algorithm, pmap, msg_bytes, fold="on", engine_jobs=engine_jobs)
    label = f"{algorithm} {pmap.num_nodes}n x {pmap.ppn}p msg={msg_bytes}"
    return _compare(full, folded, label, equivalence)


def compare_workload_fold(
    algorithm: str,
    pmap: ProcessMap,
    matrix,
    label: str,
    *,
    equivalence: str = "exact",
    engine_jobs: int = 1,
) -> FoldGateRecord:
    """Run one non-uniform exchange folded and unfolded, compare timelines."""
    full = run_workload(algorithm, pmap, matrix, fold="off", engine_jobs=engine_jobs)
    folded = run_workload(algorithm, pmap, matrix, fold="on", engine_jobs=engine_jobs)
    return _compare(full, folded, label, equivalence)


def run_fold_gate(
    *,
    num_nodes: int = 8,
    ppn: int = 4,
    algorithms: Sequence[str] | None = None,
    include_fabric: bool = True,
    engine_jobs: int = 1,
) -> FoldGateReport:
    """Differential gate over the algorithm registry, eager + rendezvous sizes.

    ``num_nodes`` is capped at 64 — beyond that the unfolded side of the
    comparison stops being tractable, which is the point of folding.
    ``engine_jobs`` runs both sides of every comparison on the parallel
    engine (the folded side degenerates to one partition); the gate's
    bit-exact verdicts are unchanged at any worker count.
    """
    if num_nodes > 64:
        raise ValueError(f"fold gate compares against full runs; num_nodes={num_nodes} > 64")
    names = list(algorithms) if algorithms is not None else list_algorithms()
    pmap = ProcessMap(tiny_cluster(num_nodes=num_nodes), ppn=ppn)
    report = FoldGateReport()

    for name in names:
        for msg_bytes in _GATE_SIZES:
            report.records.append(
                compare_alltoall_fold(name, pmap, msg_bytes, engine_jobs=engine_jobs)
            )

    nprocs = num_nodes * ppn
    workloads = [
        ("uniform", uniform(nprocs, 256)),
        ("block-diagonal", block_diagonal(nprocs, 256, group_size=ppn)),
        ("neighbor-shift", neighbor_shift(nprocs, 256, shift=1, degree=2)),
    ]
    for kind, matrix in workloads:
        report.records.append(
            compare_workload_fold(
                "pairwise", pmap, matrix, f"pairwise workload:{kind} {num_nodes}n x {ppn}p",
                engine_jobs=engine_jobs,
            )
        )

    if include_fabric:
        fabric = FatTreeFabric(hosts_per_switch=max(2, num_nodes // 4), oversubscription=2.0)
        fpmap = ProcessMap(tiny_cluster(num_nodes=num_nodes, fabric=fabric), ppn=ppn)
        for name in ("pairwise", "node-aware"):
            report.records.append(
                compare_alltoall_fold(name, fpmap, 32768, equivalence="aggregate",
                                      engine_jobs=engine_jobs)
            )
    return report


@dataclass
class ModelCrossPoint:
    """One folded-simulation vs analytic-model comparison point."""

    algorithm: str
    num_nodes: int
    ppn: int
    msg_bytes: int
    simulated: float
    predicted: float

    @property
    def ratio(self) -> float:
        return self.simulated / self.predicted if self.predicted > 0 else float("inf")

    @property
    def ok(self) -> bool:
        finite = self.simulated > 0 and self.predicted > 0
        return finite and 1e-2 <= self.ratio <= 1e2

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.algorithm} {self.num_nodes}n x {self.ppn}p "
            f"msg={self.msg_bytes}: sim={self.simulated:.3e}s "
            f"model={self.predicted:.3e}s ratio={self.ratio:.2f}"
        )


def model_crosscheck(
    *,
    node_counts: Sequence[int] = (256, 1024, 4096),
    ppn: int = 4,
    msg_bytes: int = 256,
    algorithms: Sequence[str] = ("pairwise", "node-aware"),
) -> list[ModelCrossPoint]:
    """Folded simulations at scales full runs can't reach, vs the LogGP model.

    The two cost paths share machine parameters but nothing else, so mutual
    agreement within two orders of magnitude is a real (if loose) invariant:
    it catches a folded timeline that silently dropped the absent nodes'
    serialization, and a model term that diverges at scale.
    """
    points: list[ModelCrossPoint] = []
    for num_nodes in node_counts:
        pmap = ProcessMap(tiny_cluster(num_nodes=num_nodes), ppn=ppn)
        for name in algorithms:
            outcome = run_alltoall(name, pmap, msg_bytes, fold="on", keep_job=False)
            predicted = predict_time(name, pmap, msg_bytes)
            points.append(
                ModelCrossPoint(
                    algorithm=name,
                    num_nodes=num_nodes,
                    ppn=ppn,
                    msg_bytes=msg_bytes,
                    simulated=outcome.elapsed,
                    predicted=predicted,
                )
            )
    return points
