"""Seeded random scenarios for cross-algorithm conformance checking.

A :class:`Scenario` is one fully-specified exchange: a cluster (preset or
randomized parameters), a placement (nodes x ppn), a traffic description
(uniform per-destination bytes or a :class:`~repro.workloads.TrafficMatrix`
from any registered generator, including degenerate shapes), and the
algorithm-option samples (group size, inner exchange) the differential
runner fans every registered algorithm out with.

Scenarios are *pure functions of one integer seed*: ``ScenarioGenerator``
derives every random choice from ``random.Random(f"repro-verify:{seed}")``
(string seeding is hash-randomization-proof), so a failure reported by
``repro-bench verify`` is reproduced exactly by rerunning with the failing
scenario's seed and ``--count 1``.  The canonical JSON payload and its
SHA-256 :meth:`Scenario.digest` freeze the sampled space: the golden corpus
(``tests/golden/``) pins digests so a behavioural change in the sampler — or
in anything it builds on (cluster presets, workload generators) — is caught
rather than silently shifting what gets verified.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from hashlib import sha256

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system, tiny_cluster
from repro.netsim.fabric import FabricSpec
from repro.runtime.spec import cluster_payload
from repro.utils.partition import divisors
from repro.workloads import Phase, PhasedWorkload, TrafficMatrix, make_pattern

__all__ = ["Scenario", "ScenarioGenerator", "SCENARIO_VERSION"]

#: Bumped whenever the sampled scenario space or the payload layout changes,
#: so golden-corpus digests from older layouts fail loudly instead of
#: comparing incomparable scenarios.
SCENARIO_VERSION = 1

_FAMILIES = ("uniform", "workload", "phased")

#: Workload patterns the default generator samples from.  Frozen: the golden
#: corpus pins scenario digests for the default sampler, so new pattern
#: families must NOT be added here — they join the opt-in fabric tuple below.
_PATTERN_NAMES = ("uniform", "skewed-moe", "block-diagonal", "zipf", "sparse", "self-only")

#: Extended tuple sampled when a fabric is configured: adds the shapes that
#: actually stress shared links (incast victims, directional neighbour
#: shifts).  Fabric-enabled sweeps are opt-in, so widening this tuple never
#: invalidates the golden corpus.
_PATTERN_NAMES_FABRIC = _PATTERN_NAMES + ("incast", "neighbor-shift")

_UNIFORM_SIZES = (1, 2, 3, 4, 8, 16, 64, 256, 1024, 4096)
_WORKLOAD_SIZES = (1, 4, 16, 64, 256)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified conformance scenario (picklable, hashable by digest)."""

    #: The integer seed that regenerates this scenario exactly.
    seed: int
    #: System preset name, or ``"random"`` for a sampled tiny-cluster variant.
    system: str
    cluster: Cluster
    num_nodes: int
    ppn: int
    #: ``"uniform"`` (MPI_Alltoall) or ``"workload"`` (MPI_Alltoallv).
    family: str
    #: Per-destination bytes of a uniform scenario (None for workloads).
    msg_bytes: int | None
    #: Traffic matrix of a workload scenario (None for uniform).
    matrix: TrafficMatrix | None
    #: Sampled aggregation/leader group size (a divisor of ``ppn``).
    group_size: int
    #: Sampled inner exchange for the hierarchical/aggregating algorithms.
    inner: str
    #: Phased workload of a ``"phased"`` scenario (None for the others).
    #: Optional-with-default so pre-phased constructions — and their
    #: payloads and digests — are untouched.
    phases: PhasedWorkload | None = None

    def __post_init__(self) -> None:
        if self.family not in _FAMILIES:
            raise ConfigurationError(f"unknown scenario family {self.family!r}")
        if self.family == "phased":
            if self.phases is None:
                raise ConfigurationError("a phased scenario needs a phased workload")
            if self.msg_bytes is not None or self.matrix is not None:
                raise ConfigurationError(
                    "a phased scenario carries its traffic in the workload; "
                    "msg_bytes and matrix must be None"
                )
            if self.phases.nprocs != self.num_nodes * self.ppn:
                raise ConfigurationError(
                    f"scenario workload describes {self.phases.nprocs} ranks but "
                    f"the placement has {self.num_nodes * self.ppn}"
                )
            return
        if self.phases is not None:
            raise ConfigurationError(
                f"family {self.family!r} does not take a phased workload"
            )
        if (self.msg_bytes is None) == (self.matrix is None):
            raise ConfigurationError("a scenario needs exactly one of msg_bytes and matrix")
        if self.matrix is not None and self.matrix.nprocs != self.num_nodes * self.ppn:
            raise ConfigurationError(
                f"scenario matrix describes {self.matrix.nprocs} ranks but the "
                f"placement has {self.num_nodes * self.ppn}"
            )

    # -- derived views -------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ppn

    @property
    def pattern(self) -> str:
        """Traffic-pattern name (``"uniform"`` for the uniform family)."""
        if self.family == "phased":
            return "phased"
        return "uniform" if self.matrix is None else self.matrix.pattern

    def process_map(self) -> ProcessMap:
        return ProcessMap(self.cluster, ppn=self.ppn, num_nodes=self.num_nodes)

    # -- identity ------------------------------------------------------------
    def payload(self) -> dict:
        """Plain-JSON description; the sole basis of :meth:`digest`.

        The ``phases`` key only appears on phased scenarios — the same
        optional-key invariant :class:`~repro.runtime.spec.PointSpec` keeps,
        so every pre-phased scenario digest (and with it the golden corpus)
        is byte-identical to before the family existed.
        """
        payload = {
            "version": SCENARIO_VERSION,
            "seed": self.seed,
            "system": self.system,
            "cluster": cluster_payload(self.cluster),
            "num_nodes": self.num_nodes,
            "ppn": self.ppn,
            "family": self.family,
            "msg_bytes": self.msg_bytes,
            "pattern": self.pattern,
            "matrix": None if self.matrix is None else self.matrix.bytes.tolist(),
            "group_size": self.group_size,
            "inner": self.inner,
        }
        if self.phases is not None:
            payload["phases"] = self.phases.payload()
        return payload

    def canonical(self) -> str:
        return json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable hex digest identifying the scenario (golden-corpus key)."""
        return sha256(self.canonical().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        if self.family == "phased":
            traffic = (
                f"phased x{self.phases.num_phases} "
                f"({self.phases.total_bytes} B total)"
            )
        elif self.msg_bytes is not None:
            traffic = f"{self.msg_bytes} B uniform"
        else:
            traffic = f"{self.pattern} ({self.matrix.total_bytes} B total)"
        return (
            f"seed {self.seed}: {traffic} on {self.cluster.name} "
            f"({self.num_nodes} nodes x {self.ppn} ppn, group={self.group_size}, "
            f"inner={self.inner})"
        )


class ScenarioGenerator:
    """Samples reproducible random scenarios across the cluster x traffic space.

    Parameters
    ----------
    max_ranks:
        Upper bound on ``nodes * ppn``.  The differential runner simulates
        every applicable algorithm per scenario, so scenarios stay small
        enough that a 25-scenario CI sweep completes in seconds.
    fabric:
        Optional inter-node fabric applied to every sampled cluster.  When
        set, the traffic sampler additionally draws the link-stressing
        incast / neighbour-shift shapes.  ``None`` (the default) keeps the
        sampler — and therefore the golden-corpus digests — exactly as
        before the fabric subsystem existed.
    phased:
        Opt the sampler into the ``"phased"`` scenario family: with some
        probability a scenario becomes a 2-3 phase workload (each phase an
        independently sampled traffic matrix with repeats) verified through
        :func:`repro.core.runner.run_phased_workload`.  Off by default for
        the same reason ``fabric`` is — the default sampler's digests are
        pinned by the golden corpus.
    """

    def __init__(self, max_ranks: int = 24, *, fabric: FabricSpec | None = None,
                 phased: bool = False) -> None:
        if max_ranks < 1:
            raise ConfigurationError(f"max_ranks must be positive, got {max_ranks}")
        self.max_ranks = max_ranks
        self.fabric = fabric
        self.phased = phased

    # -- public API ----------------------------------------------------------
    def scenario(self, seed: int) -> Scenario:
        """The scenario of one integer seed (pure: same seed, same scenario)."""
        rng = random.Random(f"repro-verify:{seed}")
        cluster, system = self._sample_cluster(rng)
        num_nodes, ppn = self._sample_shape(rng, cluster)
        group_size = rng.choice(divisors(ppn))
        inner = rng.choice(["pairwise", "nonblocking"])
        # The phased roll draws from its own derived stream, not ``rng``:
        # a seed that misses the roll must sample the byte-identical
        # scenario a default generator would (phased=True is a strict
        # superset of the default sampler, never a reshuffle of it).
        if self.phased and random.Random(f"repro-verify-phased:{seed}").random() < 0.35:
            workload = self._sample_phases(rng, num_nodes * ppn)
            return Scenario(
                seed=seed, system=system, cluster=cluster, num_nodes=num_nodes,
                ppn=ppn, family="phased", msg_bytes=None, matrix=None,
                group_size=group_size, inner=inner, phases=workload,
            )
        if rng.random() < 0.4:
            return Scenario(
                seed=seed, system=system, cluster=cluster, num_nodes=num_nodes,
                ppn=ppn, family="uniform", msg_bytes=rng.choice(_UNIFORM_SIZES),
                matrix=None, group_size=group_size, inner=inner,
            )
        matrix = self._sample_matrix(rng, num_nodes * ppn)
        return Scenario(
            seed=seed, system=system, cluster=cluster, num_nodes=num_nodes,
            ppn=ppn, family="workload", msg_bytes=None, matrix=matrix,
            group_size=group_size, inner=inner,
        )

    def scenarios(self, base_seed: int, count: int) -> list[Scenario]:
        """Scenarios of the consecutive seeds ``base_seed .. base_seed + count - 1``.

        Consecutive seeding keeps the reproduction contract trivial: scenario
        ``i`` of ``verify --seed S --count N`` is exactly
        ``verify --seed S+i --count 1``.
        """
        if count < 1:
            raise ConfigurationError(f"count must be positive, got {count}")
        return [self.scenario(base_seed + i) for i in range(count)]

    # -- sampling ------------------------------------------------------------
    def _sample_cluster(self, rng: random.Random) -> tuple[Cluster, str]:
        roll = rng.random()
        if roll < 0.5:
            # Randomized node architecture: exercises NUMA/socket boundaries
            # the fixed presets never hit.
            cluster = tiny_cluster(
                num_nodes=4,
                sockets=rng.choice([1, 2]),
                numa_per_socket=rng.choice([1, 2]),
                cores_per_numa=rng.choice([1, 2, 3, 4]),
            )
        else:
            name = rng.choice(["tiny", "dane", "amber", "tuolomne"])
            cluster = get_system(name, 4)
            if self.fabric is None:
                return cluster, name
            return cluster.with_fabric(self.fabric), name
        if self.fabric is not None:
            cluster = cluster.with_fabric(self.fabric)
        return cluster, "random"

    def _sample_shape(self, rng: random.Random, cluster: Cluster) -> tuple[int, int]:
        choices = [
            (nodes, ppn)
            for nodes in range(1, cluster.num_nodes + 1)
            for ppn in range(1, min(cluster.cores_per_node, 8) + 1)
            if nodes * ppn <= self.max_ranks
        ]
        return rng.choice(choices)

    def _sample_phases(self, rng: random.Random, nprocs: int) -> PhasedWorkload:
        """A 2-3 phase workload of independently sampled matrices."""
        count = rng.choice([2, 3])
        phases = []
        for index in range(count):
            matrix = self._sample_matrix(rng, nprocs)
            phases.append(Phase(
                name=f"p{index}-{matrix.pattern}",
                matrix=matrix,
                repeats=rng.choice([1, 1, 2]),
            ))
        return PhasedWorkload(phases)

    def _sample_matrix(self, rng: random.Random, nprocs: int) -> TrafficMatrix:
        names = _PATTERN_NAMES if self.fabric is None else _PATTERN_NAMES_FABRIC
        name = rng.choice(names)
        msg_bytes = rng.choice(_WORKLOAD_SIZES)
        sub_seed = rng.randrange(2**31)
        options: dict = {}
        if name == "skewed-moe":
            options = {
                "concentration": rng.choice([1.0, 2.0, 4.0, 8.0]),
                "hot_fraction": rng.choice([0.1, 0.25, 0.5]),
                "jitter": rng.choice([0.0, 0.25]),
                "seed": sub_seed,
            }
        elif name == "block-diagonal":
            options = {
                "group_size": rng.choice(divisors(nprocs)),
                "remote_bytes": rng.choice([0, 1, 8]),
            }
        elif name == "zipf":
            # Exponents up to 4 give the "highly skewed" degenerate shape:
            # all but each source's favourite destination round down to zero.
            options = {"exponent": rng.choice([0.8, 1.2, 2.5, 4.0]), "seed": sub_seed}
        elif name == "sparse":
            options = {"out_degree": rng.choice([1, 2, 4]), "seed": sub_seed}
        elif name == "incast":
            options = {
                "hotspots": min(rng.choice([1, 2]), nprocs),
                "background_bytes": rng.choice([0, 1]),
                "seed": sub_seed,
            }
        elif name == "neighbor-shift":
            if nprocs == 1:
                # A single rank has no neighbours; keep the degenerate
                # single-rank coverage via the self-only shape instead.
                name = "self-only"
            else:
                shifts = [s for s in (1, 2, nprocs // 2) if s % nprocs != 0]
                options = {
                    "shift": rng.choice(shifts),
                    "degree": rng.choice([1, 2]),
                }
        matrix = make_pattern(name, nprocs, msg_bytes, **options)
        # Degenerate post-op: zero out random send rows (possibly all of
        # them) — ranks that participate but contribute no bytes.
        if rng.random() < 0.25:
            rows = rng.sample(range(nprocs), rng.randint(1, nprocs))
            matrix = matrix.with_zero_rows(rows)
        return matrix
