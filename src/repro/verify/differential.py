"""Differential execution: every applicable algorithm must deliver the same bytes.

The :class:`DifferentialRunner` takes one :class:`~repro.verify.Scenario`
and executes **every** registered algorithm that is applicable to it through
the :mod:`repro.simmpi` discrete-event engine:

* uniform scenarios run the full :data:`~repro.core.alltoall.registry.ALGORITHMS`
  family, with the sampled group size / inner exchange applied to the
  hierarchical members, and compare each receive buffer byte-for-byte
  against the ``system-mpi`` baseline's buffers *and* the closed-form
  reference of :mod:`repro.core.validation`;
* workload scenarios run every v-algorithm configuration against the
  independent ``alltoallv`` oracle (:func:`expected_workload_result`), the
  same transposition every v-capable algorithm is validated against —
  pairwise equivalence of all algorithms follows from equality with the
  shared reference.

On top of byte equivalence the runner performs timing sanity checks: every
simulated elapsed time must be finite and non-negative, and for every
algorithm the analytic model covers, the predicted time must be finite,
non-negative and monotone non-decreasing when the traffic doubles.

Failures come back as :class:`~repro.verify.report.FailureReport` objects,
shrunk (reduced ranks / bytes) to a minimal reproducer that still fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from hashlib import sha256

import numpy as np

from repro.core.alltoall.registry import get_algorithm
from repro.core.alltoall.valgorithms import get_v_algorithm
from repro.core.runner import run_alltoall, run_phased_workload, run_workload
from repro.core.validation import expected_alltoall_result, expected_workload_result
from repro.errors import ReproError
from repro.model.predict import (
    MODELED_ALGORITHMS,
    WORKLOAD_MODELED_ALGORITHMS,
    predict_time,
    predict_workload_time,
)
from repro.verify.report import FailureReport, shrink_scenario
from repro.verify.scenario import Scenario, ScenarioGenerator

__all__ = [
    "AlgorithmConfig",
    "VerificationRecord",
    "DifferentialRunner",
    "verify_seed",
    "verify_task",
]

#: Relative slack for the model monotonicity check: doubling the traffic may
#: never make the predicted time smaller by more than floating-point noise.
_MONOTONE_RTOL = 1e-9

_DTYPE = np.uint8


@dataclass(frozen=True)
class AlgorithmConfig:
    """One (algorithm name, options) configuration the runner executes."""

    name: str
    options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, name: str, **options) -> "AlgorithmConfig":
        return cls(name=name, options=tuple(sorted(options.items())))

    def as_dict(self) -> dict:
        return dict(self.options)

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        return f"{self.name}({opts})" if opts else self.name


@dataclass
class VerificationRecord:
    """Outcome of verifying one scenario (picklable: plain values only)."""

    seed: int
    digest: str
    family: str
    description: str
    #: Hex digest of the reference receive buffers (golden-corpus value).
    result_hash: str
    #: Configurations that ran and matched, as describe() strings.
    verified: list[str] = field(default_factory=list)
    #: Configurations skipped as inapplicable (validate() rejected them).
    skipped: list[str] = field(default_factory=list)
    failures: list[FailureReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.failures)})"
        return (
            f"[{self.digest[:12]}] seed {self.seed}: {self.family:<8s} "
            f"{len(self.verified)} algorithm(s) verified, {len(self.skipped)} "
            f"skipped -> {status}"
        )


def _same_system_mpi_regime(msg_bytes: int, options: dict) -> bool:
    """Whether ``msg_bytes`` and ``2 * msg_bytes`` select the same flat exchange."""
    from repro.core.alltoall.system_mpi import SystemMPIAlltoall

    baseline = SystemMPIAlltoall(**options)
    return baseline.chosen_exchange(msg_bytes) == baseline.chosen_exchange(2 * msg_bytes)


def uniform_configurations(scenario: Scenario) -> list[AlgorithmConfig]:
    """Every registry algorithm, parameterised by the scenario's samples.

    The ``system-mpi`` baseline is always first: it is the reference the
    other buffers are compared against.
    """
    g, inner = scenario.group_size, scenario.inner
    return [
        AlgorithmConfig.make("system-mpi"),
        AlgorithmConfig.make("pairwise"),
        AlgorithmConfig.make("nonblocking"),
        AlgorithmConfig.make("bruck"),
        AlgorithmConfig.make("batched"),
        AlgorithmConfig.make("hierarchical"),
        AlgorithmConfig.make("multileader", procs_per_leader=g, inner=inner),
        AlgorithmConfig.make("node-aware", inner=inner),
        AlgorithmConfig.make("locality-aware", procs_per_group=g, inner=inner),
        AlgorithmConfig.make("multileader-node-aware", procs_per_leader=g, inner=inner),
    ]


def workload_configurations(scenario: Scenario) -> list[AlgorithmConfig]:
    """Every v-capable algorithm configuration for a workload scenario."""
    g, inner = scenario.group_size, scenario.inner
    configs = [
        AlgorithmConfig.make("pairwise"),
        AlgorithmConfig.make("nonblocking"),
        AlgorithmConfig.make("node-aware"),
    ]
    # The parameterised variant duplicates the default node-aware config
    # (procs_per_group=None means whole-node, inner defaults to pairwise)
    # whenever the samples land on exactly that; don't simulate it twice.
    if g != scenario.ppn or inner != "pairwise":
        configs.append(AlgorithmConfig.make("node-aware", procs_per_group=g, inner=inner))
    return configs


def reference_buffers(scenario: Scenario) -> list[np.ndarray]:
    """Closed-form expected receive buffers (the defining transposition).

    Phased scenarios return one buffer per rank: the concatenation of the
    per-phase expected results in phase order, matching how
    :meth:`DifferentialRunner._execute_and_compare` flattens the phased
    engine results before comparing.
    """
    nprocs = scenario.nprocs
    if scenario.family == "uniform":
        return [
            expected_alltoall_result(rank, nprocs, scenario.msg_bytes, dtype=_DTYPE)
            for rank in range(nprocs)
        ]
    if scenario.family == "phased":
        per_phase = [
            phase.matrix.item_counts(_DTYPE) for phase in scenario.phases.phases
        ]
        return [
            np.concatenate([
                expected_workload_result(rank, counts, dtype=_DTYPE)
                for counts in per_phase
            ])
            for rank in range(nprocs)
        ]
    counts = scenario.matrix.item_counts(_DTYPE)
    return [expected_workload_result(rank, counts, dtype=_DTYPE) for rank in range(nprocs)]


def result_hash(scenario: Scenario) -> str:
    """Hex digest of the scenario's reference buffers.

    This is what every conforming algorithm must deliver, so freezing it in
    the golden corpus pins the *bytes* of the exchange: a future PR that
    changes what any algorithm delivers (rather than how fast) breaks the
    corpus check even if all algorithms change in unison.
    """
    hasher = sha256()
    hasher.update(f"{scenario.family}:{scenario.nprocs}".encode())
    for buf in reference_buffers(scenario):
        hasher.update(str(buf.size).encode())
        hasher.update(buf.tobytes())
    return hasher.hexdigest()


class DifferentialRunner:
    """Runs scenarios through every applicable algorithm and cross-checks them.

    Parameters
    ----------
    shrink:
        Attempt to reduce failing scenarios (fewer ranks, fewer bytes) to a
        minimal reproducer before reporting.  Disabled inside the shrinking
        search itself.
    engine_jobs:
        Parallel-engine worker count for every simulated run (bit-identical
        to serial, so verification verdicts and golden digests are
        unchanged at any value).
    faults:
        Optional :class:`repro.faults.FaultSpec` injected into every
        simulated run.  Faults perturb timings only, never delivered
        bytes, so verdicts and golden digests must be unchanged under any
        fault load — running the corpus faulted checks exactly that.
    """

    def __init__(self, *, shrink: bool = True, engine_jobs: int = 1,
                 faults=None) -> None:
        self.shrink = shrink
        self.engine_jobs = engine_jobs
        self.faults = faults if faults else None

    # -- public API ----------------------------------------------------------
    def verify(self, scenario: Scenario) -> VerificationRecord:
        """Execute and cross-check every applicable algorithm on ``scenario``."""
        record = VerificationRecord(
            seed=scenario.seed,
            digest=scenario.digest(),
            family=scenario.family,
            description=scenario.describe(),
            result_hash=result_hash(scenario),
        )
        # Phased scenarios run the same v-capable set as workloads — every
        # configuration must deliver the reference bytes in every phase.
        configs = (
            uniform_configurations(scenario)
            if scenario.family == "uniform"
            else workload_configurations(scenario)
        )
        reference = reference_buffers(scenario)
        for config in configs:
            failure, outcome = self._execute_and_compare(scenario, config, reference)
            if failure is None:
                record.verified.append(config.describe())
                if scenario.family == "uniform" and config.name == "system-mpi":
                    # The baseline just verified against the closed form;
                    # from here on every algorithm is compared against the
                    # bytes the system MPI actually delivered, making the
                    # check differential in the literal sense (and immune to
                    # a hypothetical oracle bug shared with no algorithm).
                    reference = [
                        np.asarray(buf).reshape(-1) for buf in outcome.job.results
                    ]
            elif failure.kind == "inapplicable":
                record.skipped.append(config.describe())
            else:
                # The shrinker reduces ranks/bytes through the matrix field,
                # which phased scenarios don't carry — report them unshrunk.
                if self.shrink and scenario.family != "phased":
                    failure = self._shrink(scenario, config, failure)
                record.failures.append(failure)
        return record

    # -- single-configuration check ------------------------------------------
    def check_configuration(
        self,
        scenario: Scenario,
        config: AlgorithmConfig,
        reference: list[np.ndarray] | None = None,
    ) -> FailureReport | None:
        """Check one configuration; ``None`` means it verified cleanly.

        A returned report with ``kind="inapplicable"`` is not a failure: the
        algorithm's own ``validate()`` rejected the placement (e.g. a group
        size that does not divide the ppn), which is its documented contract.
        """
        failure, _outcome = self._execute_and_compare(scenario, config, reference)
        return failure

    def _execute_and_compare(
        self,
        scenario: Scenario,
        config: AlgorithmConfig,
        reference: list[np.ndarray] | None = None,
    ):
        """Run one configuration and compare it; returns (failure, outcome)."""
        pmap = scenario.process_map()
        options = config.as_dict()
        try:
            if scenario.family == "uniform":
                algo = get_algorithm(config.name, **options)
                algo.validate(pmap)
            elif scenario.family == "phased":
                algo = get_v_algorithm(config.name, **options)
                for phase in scenario.phases.phases:
                    algo.validate(pmap, phase.matrix.item_counts(_DTYPE))
            else:
                algo = get_v_algorithm(config.name, **options)
                algo.validate(pmap, scenario.matrix.item_counts(_DTYPE))
        except ReproError as exc:
            return self._failure(scenario, config, "inapplicable", str(exc)), None

        if reference is None:
            reference = reference_buffers(scenario)
        try:
            if scenario.family == "uniform":
                outcome = run_alltoall(
                    algo, pmap, scenario.msg_bytes, dtype=_DTYPE, validate=True,
                    engine_jobs=self.engine_jobs, faults=self.faults,
                )
            elif scenario.family == "phased":
                outcome = run_phased_workload(
                    (config.name, options), pmap, scenario.phases,
                    dtype=_DTYPE, validate=True,
                    engine_jobs=self.engine_jobs, faults=self.faults,
                )
            else:
                outcome = run_workload(
                    algo, pmap, scenario.matrix, dtype=_DTYPE, validate=True,
                    engine_jobs=self.engine_jobs, faults=self.faults,
                )
        except Exception as exc:  # a crash on a valid scenario is a finding
            return self._failure(
                scenario, config, "error", f"{type(exc).__name__}: {exc}"
            ), None

        if not outcome.correct:
            return self._failure(
                scenario, config, "mismatch",
                "core.validation rejected the receive buffers "
                "(reference transposition violated)",
            ), outcome
        for rank, (got, want) in enumerate(zip(outcome.job.results, reference)):
            if scenario.family == "phased":
                got = np.concatenate(
                    [np.asarray(part).reshape(-1) for part in got]
                )
            if not np.array_equal(np.asarray(got).reshape(-1), want):
                return self._failure(
                    scenario, config, "mismatch",
                    f"rank {rank} delivered different bytes than the reference",
                ), outcome
        return self._check_timing(scenario, config, pmap, outcome.elapsed), outcome

    # -- timing sanity --------------------------------------------------------
    def _check_timing(self, scenario, config, pmap, elapsed) -> FailureReport | None:
        if not math.isfinite(elapsed) or elapsed < 0.0:
            return self._failure(
                scenario, config, "timing",
                f"simulated time is not a finite non-negative value: {elapsed!r}",
            )
        if scenario.family == "phased":
            # The analytic model prices single exchanges; a phased run is a
            # sequence of them, so only the finiteness check above applies.
            return None
        options = config.as_dict()
        try:
            if scenario.family == "uniform":
                if config.name not in MODELED_ALGORITHMS:
                    return None
                if config.name == "system-mpi" and not _same_system_mpi_regime(
                    scenario.msg_bytes, options
                ):
                    # Size-switched selection is legitimately non-monotone at
                    # its thresholds: both the model and the simulator show
                    # e.g. 512 B (nonblocking) beating 256 B (Bruck) on small
                    # rank counts.  Monotonicity only holds per fixed
                    # exchange, so skip comparisons that straddle a switch.
                    return None
                small = predict_time(config.name, pmap, scenario.msg_bytes, **dict(options))
                large = predict_time(config.name, pmap, 2 * scenario.msg_bytes, **dict(options))
            else:
                if config.name not in WORKLOAD_MODELED_ALGORITHMS:
                    return None
                small = predict_workload_time(config.name, pmap, scenario.matrix, **dict(options))
                large = predict_workload_time(
                    config.name, pmap, scenario.matrix.scaled(2), **dict(options)
                )
        except ReproError:
            # The model legitimately covers fewer option combinations than
            # the simulator (e.g. unmodelled inner exchanges); that is not a
            # conformance failure.
            return None
        for value in (small, large):
            if not math.isfinite(value) or value < 0.0:
                return self._failure(
                    scenario, config, "timing",
                    f"model prediction is not a finite non-negative value: {value!r}",
                )
        if large < small * (1.0 - _MONOTONE_RTOL):
            return self._failure(
                scenario, config, "timing",
                f"model is not monotone in message size: doubling the traffic "
                f"dropped the prediction from {small:.6e} s to {large:.6e} s",
            )
        return None

    # -- failure assembly ------------------------------------------------------
    def _failure(self, scenario, config, kind, detail) -> FailureReport:
        return FailureReport(
            kind=kind,
            seed=scenario.seed,
            digest=scenario.digest(),
            algorithm=config.describe(),
            detail=detail,
            scenario_payload=scenario.payload(),
        )

    def _shrink(self, scenario, config, failure: FailureReport) -> FailureReport:
        def still_fails(candidate: Scenario, candidate_config: AlgorithmConfig) -> bool:
            found = self.check_configuration(candidate, candidate_config)
            return found is not None and found.kind == failure.kind

        minimal, minimal_config, crash = shrink_scenario(scenario, config, still_fails)
        if minimal is not scenario:
            failure.minimal_payload = minimal.payload()
            failure.minimal_algorithm = minimal_config.describe()
        if crash is not None:
            failure.shrink_crash = crash
        return failure


def verify_seed(seed: int, max_ranks: int = 24, *, fabric=None,
                engine_jobs: int = 1, faults=None,
                phased: bool = False) -> VerificationRecord:
    """Verify the scenario of one seed (the programmatic one-liner).

    ``fabric`` (a :mod:`repro.netsim.fabric` spec) opts the sampled cluster
    into a contended inter-node topology and widens the traffic sampler
    with the link-stressing incast / neighbour-shift shapes.
    ``engine_jobs`` selects the parallel engine for the simulated runs
    (bit-identical timings, identical verdicts and digests).
    ``faults`` (a :class:`repro.faults.FaultSpec`) injects deterministic
    machine degradations into every simulated run: faults perturb timings
    only, never the delivered bytes, so the differential byte checks and
    the golden-corpus digests (hashes of the reference buffers) are
    unchanged under any fault load — which is itself the conformance
    property being verified.
    ``phased`` opts the sampler into multi-phase scenarios
    (:class:`repro.workloads.PhasedWorkload` run end-to-end on one engine
    timeline); the default sampler is untouched so existing seeds keep
    their scenarios and digests.
    """
    scenario = ScenarioGenerator(
        max_ranks=max_ranks, fabric=fabric, phased=phased
    ).scenario(seed)
    return DifferentialRunner(engine_jobs=engine_jobs, faults=faults).verify(scenario)


def verify_task(task: tuple) -> VerificationRecord:
    """Module-level pool worker: ``task`` is a picklable ``(seed, max_ranks)``
    optionally extended with ``fabric_spec``, ``engine_jobs``, a
    :class:`repro.faults.FaultSpec` and a ``phased`` sampler flag
    (trailing slots may be omitted).

    Lives at module scope so :meth:`repro.runtime.SweepExecutor.map` can fan
    scenario seeds out over a ``spawn`` process pool.
    """
    seed, max_ranks = task[0], task[1]
    fabric = task[2] if len(task) > 2 else None
    engine_jobs = task[3] if len(task) > 3 else 1
    faults = task[4] if len(task) > 4 else None
    phased = task[5] if len(task) > 5 else False
    return verify_seed(seed, max_ranks, fabric=fabric, engine_jobs=engine_jobs,
                       faults=faults, phased=phased)
