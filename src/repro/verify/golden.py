"""Golden regression corpus: frozen scenario digests and result hashes.

The corpus (``tests/golden/verify_corpus.json``) pins, for a fixed set of
seeds, the scenario digest (what the generator samples) and the result hash
(the exact bytes every conforming algorithm must deliver for that scenario).
Future PRs cannot silently change either: a sampler change shifts the
digest, a semantic change to any exchange shifts the result hash, and both
fail the corpus test until the change is acknowledged by refreshing.

Refresh procedure (after an *intentional* behaviour change)::

    PYTHONPATH=src python -m repro.verify.golden refresh
    git diff tests/golden/verify_corpus.json   # review what moved, commit

``check`` recomputes everything and prints the first divergence::

    PYTHONPATH=src python -m repro.verify.golden check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.verify.differential import result_hash
from repro.verify.scenario import SCENARIO_VERSION, ScenarioGenerator

__all__ = [
    "GOLDEN_SEEDS",
    "PHASED_GOLDEN_SEEDS",
    "DEFAULT_CORPUS_PATH",
    "build_corpus",
    "check_corpus",
    "write_corpus",
]

#: The frozen seed set.  Chosen once; extend (do not reorder) when widening
#: the corpus so existing entries keep their meaning.
GOLDEN_SEEDS: tuple[int, ...] = tuple(range(2025000, 2025012))

#: Seeds sampled with the phased-aware generator
#: (``ScenarioGenerator(phased=True)``).  Hand-scanned from 2025100 upward
#: for seeds that actually draw the phased family — distinct from
#: :data:`GOLDEN_SEEDS` so the default sampler (and every existing digest)
#: is untouched.  Their corpus entries carry ``"sampler": "phased"``.
PHASED_GOLDEN_SEEDS: tuple[int, ...] = (2025100, 2025104, 2025112, 2025115)

DEFAULT_CORPUS_PATH = Path(__file__).resolve().parents[3] / "tests" / "golden" / "verify_corpus.json"


def _entry(scenario, seed: int, sampler: str | None = None) -> dict:
    entry = {
        "seed": seed,
        "digest": scenario.digest(),
        "result_hash": result_hash(scenario),
        "family": scenario.family,
        "pattern": scenario.pattern,
        "nprocs": scenario.nprocs,
    }
    # The key is present only for non-default samplers so the original
    # entries stay byte-identical (the same optional-key invariant
    # Scenario.payload() and PointSpec.payload() follow).
    if sampler is not None:
        entry["sampler"] = sampler
    return entry


def build_corpus(seeds: Sequence[int] = GOLDEN_SEEDS,
                 phased_seeds: Sequence[int] = PHASED_GOLDEN_SEEDS) -> dict:
    """Compute the corpus entries for ``seeds`` (no simulation: oracle only).

    ``seeds`` go through the default generator; ``phased_seeds`` through
    ``ScenarioGenerator(phased=True)`` and are appended after them.
    """
    generator = ScenarioGenerator()
    entries = [_entry(generator.scenario(seed), seed) for seed in seeds]
    phased_generator = ScenarioGenerator(phased=True)
    entries.extend(
        _entry(phased_generator.scenario(seed), seed, sampler="phased")
        for seed in phased_seeds
    )
    return {"version": SCENARIO_VERSION, "entries": entries}


def check_corpus(path: Path | str = DEFAULT_CORPUS_PATH) -> list[str]:
    """Recompute the corpus and return a list of divergences (empty = green)."""
    path = Path(path)
    try:
        frozen = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read golden corpus at {path}: {exc}"]
    problems: list[str] = []
    if frozen.get("version") != SCENARIO_VERSION:
        problems.append(
            f"corpus version {frozen.get('version')!r} != scenario version "
            f"{SCENARIO_VERSION}; refresh the corpus"
        )
        return problems
    # A hand-edited or half-merged corpus may be valid JSON with the wrong
    # shape; that is a divergence to report, not a crash of the checker.
    try:
        seeds = [e["seed"] for e in frozen["entries"] if e.get("sampler") is None]
        phased_seeds = [
            e["seed"] for e in frozen["entries"] if e.get("sampler") == "phased"
        ]
        current = {
            (e.get("sampler"), e["seed"]): e
            for e in build_corpus(seeds, phased_seeds)["entries"]
        }
        for entry in frozen["entries"]:
            live = current[(entry.get("sampler"), entry["seed"])]
            for key in ("digest", "result_hash", "family", "pattern", "nprocs"):
                if entry[key] != live[key]:
                    problems.append(
                        f"seed {entry['seed']}: {key} changed "
                        f"({entry[key]!r} -> {live[key]!r})"
                    )
    except (KeyError, TypeError) as exc:
        problems.append(
            f"corpus at {path} is malformed ({type(exc).__name__}: {exc}); "
            "refresh it with `python -m repro.verify.golden refresh`"
        )
    return problems


def write_corpus(path: Path | str = DEFAULT_CORPUS_PATH,
                 seeds: Sequence[int] = GOLDEN_SEEDS,
                 phased_seeds: Sequence[int] = PHASED_GOLDEN_SEEDS) -> Path:
    """(Re)write the corpus file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(build_corpus(seeds, phased_seeds), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.golden",
        description="Check or refresh the golden conformance corpus",
    )
    parser.add_argument("action", choices=["check", "refresh"])
    parser.add_argument("--path", default=str(DEFAULT_CORPUS_PATH),
                        help=f"corpus file (default: {DEFAULT_CORPUS_PATH})")
    args = parser.parse_args(argv)
    if args.action == "refresh":
        written = write_corpus(args.path)
        print(f"wrote {written}")
        return 0
    problems = check_corpus(args.path)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print("golden corpus is consistent")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
