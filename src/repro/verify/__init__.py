"""Cross-algorithm differential conformance and seeded scenario fuzzing.

The paper's algorithms are interchangeable in *result* but not in *cost*;
this package checks the first claim mechanically across the whole cluster x
placement x workload space the repository can generate:

* :class:`~repro.verify.scenario.ScenarioGenerator` — samples reproducible
  random scenarios (system presets or randomized clusters, every traffic
  generator including degenerate shapes: zero-byte send rows, single-rank
  jobs, self-only traffic, highly skewed Zipf) from a single integer seed;
* :class:`~repro.verify.differential.DifferentialRunner` — executes every
  applicable registered algorithm on the same scenario through the
  :mod:`repro.simmpi` engine and asserts byte-identical receive buffers
  against the closed-form reference (and, for uniform scenarios, the
  ``system-mpi`` baseline), plus timing sanity: finite, non-negative,
  model monotone in message size;
* :class:`~repro.verify.report.FailureReport` — on mismatch, a shrunken
  minimal reproducer carrying the seed, replayable with
  ``repro-bench verify --seed <seed> --count 1``;
* :mod:`~repro.verify.folding` — the symmetry-folding differential gate:
  every registered algorithm (eager + rendezvous sizes, uniform and
  symmetric non-uniform workloads) run folded and at full width with
  bit-identical timings demanded on contention-free fabrics, plus a
  folded-simulation vs analytic-model cross-check at scales no full run
  can reach;
* :mod:`~repro.verify.golden` — the frozen digest/result-hash corpus under
  ``tests/golden/`` that stops future PRs from silently changing delivered
  bytes.

Drive it from the CLI (``repro-bench verify --seed 2025 --count 25
--jobs 4``) or programmatically::

    from repro.verify import DifferentialRunner, ScenarioGenerator

    record = DifferentialRunner().verify(ScenarioGenerator().scenario(2025))
    assert record.ok, record.failures
"""

from repro.verify.folding import (
    FoldGateRecord,
    FoldGateReport,
    ModelCrossPoint,
    model_crosscheck,
    run_fold_gate,
)
from repro.verify.differential import (
    AlgorithmConfig,
    DifferentialRunner,
    VerificationRecord,
    result_hash,
    uniform_configurations,
    verify_seed,
    verify_task,
    workload_configurations,
)
from repro.verify.report import FailureReport, format_failure, shrink_scenario
from repro.verify.scenario import SCENARIO_VERSION, Scenario, ScenarioGenerator

__all__ = [
    "AlgorithmConfig",
    "DifferentialRunner",
    "FailureReport",
    "FoldGateRecord",
    "FoldGateReport",
    "ModelCrossPoint",
    "Scenario",
    "ScenarioGenerator",
    "SCENARIO_VERSION",
    "VerificationRecord",
    "format_failure",
    "model_crosscheck",
    "result_hash",
    "run_fold_gate",
    "shrink_scenario",
    "uniform_configurations",
    "verify_seed",
    "verify_task",
    "workload_configurations",
]
