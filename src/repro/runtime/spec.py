"""Picklable, hashable benchmark point specifications.

A :class:`PointSpec` captures everything needed to reproduce one benchmark
point — the cluster (name and full cost parameters, so ablation overrides
are part of the identity), the placement (ppn, node count), the engine, the
algorithm with its options, and either a uniform per-destination message
size or a workload trace (the dense JSON form of a
:class:`~repro.workloads.TrafficMatrix`).

Specs serialize to a canonical JSON form; the SHA-256 of that form is the
cache key of the on-disk :class:`~repro.runtime.store.ResultStore`.  Two
specs are equal exactly when their canonical forms are equal, so any change
to the cluster parameters, the algorithm options or the traffic invalidates
the cached result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as _dataclass_fields
from hashlib import sha256
from typing import Any

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.hierarchy import LocalityLevel
from repro.machine.params import LevelCosts, MachineParameters
from repro.machine.topology import NodeArchitecture
from repro.netsim.fabric import FullBisectionFabric, fabric_from_payload

__all__ = ["PointSpec", "cluster_payload", "cluster_from_payload"]

#: Bumped whenever the canonical payload layout changes, so stale cache
#: entries from older layouts miss instead of being misinterpreted.
SPEC_VERSION = 1

_ENGINES = ("simulate", "model")

_FOLD_MODES = ("off", "auto", "on")


def _params_payload(params: MachineParameters) -> dict:
    payload: dict[str, Any] = {
        "levels": {
            level.name: [params.levels[level].latency, params.levels[level].bandwidth]
            for level in LocalityLevel
        }
    }
    for spec_field in _dataclass_fields(params):
        if spec_field.name != "levels":
            payload[spec_field.name] = getattr(params, spec_field.name)
    return payload


def cluster_payload(cluster: Cluster) -> dict:
    """Serialize a :class:`Cluster` to a plain-JSON dictionary.

    The fabric is serialized only when it is not the full-bisection
    default: a missing ``"fabric"`` key means full bisection, which keeps
    every pre-fabric cache key and golden-corpus digest bit-identical while
    still making any non-trivial topology part of a point's identity.
    """
    payload = {
        "name": cluster.name,
        "num_nodes": cluster.num_nodes,
        "node": {
            "name": cluster.node.name,
            "sockets": cluster.node.sockets,
            "numa_per_socket": cluster.node.numa_per_socket,
            "cores_per_numa": cluster.node.cores_per_numa,
        },
        "params": _params_payload(cluster.params),
        "network_name": cluster.network_name,
        "system_mpi_name": cluster.system_mpi_name,
    }
    if not isinstance(cluster.fabric, FullBisectionFabric):
        payload["fabric"] = cluster.fabric.payload()
    return payload


def cluster_from_payload(payload: dict) -> Cluster:
    """Rebuild a :class:`Cluster` from :func:`cluster_payload` output."""
    params_payload = dict(payload["params"])
    levels = {
        LocalityLevel[name]: LevelCosts(latency=pair[0], bandwidth=pair[1])
        for name, pair in params_payload.pop("levels").items()
    }
    return Cluster(
        name=payload["name"],
        node=NodeArchitecture(**payload["node"]),
        num_nodes=payload["num_nodes"],
        params=MachineParameters(levels=levels, **params_payload),
        network_name=payload["network_name"],
        system_mpi_name=payload["system_mpi_name"],
        fabric=fabric_from_payload(payload.get("fabric")),
    )


@dataclass(frozen=True, eq=False)
class PointSpec:
    """One benchmark point as a self-contained, picklable value.

    Exactly one of ``msg_bytes`` (uniform all-to-all) and ``trace``
    (non-uniform workload, as a dense JSON trace string) is set.
    """

    cluster: Cluster
    ppn: int
    num_nodes: int
    engine: str
    algorithm: str
    repetitions: int = 1
    options: tuple[tuple[str, Any], ...] = ()
    msg_bytes: int | None = None
    trace: str | None = None
    #: Canonical JSON of a phased run plan (jobs, workloads, per-phase
    #: algorithm assignments) — see :meth:`for_phased`.  ``None`` for every
    #: uniform / workload spec; serialized into the payload only when
    #: present, so all pre-phases cache keys are bit-identical.
    phases: str | None = None
    #: Symmetry-folding mode for the simulate engine ("off", "auto", "on").
    #: Ignored by the model engine, which is scale-free already.
    fold: str = "off"
    #: Optional :class:`repro.faults.FaultSpec` injected into the simulate
    #: engine.  Part of the cache identity when non-empty (a faulted point
    #: is a different result); empty specs normalise to ``None`` and are
    #: omitted from the payload, so pre-faults cache keys keep hitting.
    faults: Any = None
    #: Parallel-engine worker count for the simulate engine.  Deliberately
    #: **excluded from the canonical payload** (see :meth:`payload`): the
    #: conservative-lookahead engine is bit-identical to serial, so a point
    #: computed at any worker count is the same result and must hit the
    #: same cache entry.
    engine_jobs: int = 1

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ConfigurationError(f"unknown engine {self.engine!r}; choose from {_ENGINES}")
        if self.fold not in _FOLD_MODES:
            raise ConfigurationError(
                f"unknown fold mode {self.fold!r}; choose from {_FOLD_MODES}"
            )
        if self.phases is not None:
            if self.msg_bytes is not None or self.trace is not None:
                raise ConfigurationError(
                    "a phased PointSpec cannot also carry msg_bytes or trace"
                )
            if self.engine != "simulate":
                raise ConfigurationError(
                    "phased specs require the simulate engine "
                    f"(got engine={self.engine!r}): interference between "
                    "phases and jobs is not analytically modelled"
                )
            if self.fold != "off":
                raise ConfigurationError(
                    "phased specs are incompatible with symmetry folding "
                    f"(fold={self.fold!r})"
                )
        elif (self.msg_bytes is None) == (self.trace is None):
            raise ConfigurationError("a PointSpec needs exactly one of msg_bytes and trace")
        if self.ppn <= 0 or self.num_nodes <= 0:
            raise ConfigurationError("ppn and num_nodes must be positive")
        if self.repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")
        if self.engine_jobs < 1:
            raise ConfigurationError(f"engine_jobs must be >= 1, got {self.engine_jobs}")
        if self.faults is not None:
            from repro.faults.spec import FaultSpec

            if not isinstance(self.faults, FaultSpec):
                raise ConfigurationError(
                    f"faults must be a FaultSpec or None, got {type(self.faults).__name__}"
                )
            if not self.faults:
                # An empty spec is the healthy machine: normalise to None so
                # equality, hashing and the cache key cannot distinguish them.
                object.__setattr__(self, "faults", None)
            elif self.engine != "simulate":
                raise ConfigurationError(
                    "fault injection requires the simulate engine "
                    f"(got engine={self.engine!r})"
                )
            elif self.fold != "off":
                raise ConfigurationError(
                    "fault injection is incompatible with symmetry folding "
                    f"(fold={self.fold!r})"
                )
        if self.num_nodes > self.cluster.num_nodes:
            raise ConfigurationError(
                f"spec requests {self.num_nodes} nodes but the cluster has "
                f"{self.cluster.num_nodes}"
            )

    # -- construction -------------------------------------------------------
    @classmethod
    def for_alltoall(cls, cluster: Cluster, ppn: int, num_nodes: int, algorithm: str,
                     msg_bytes: int, *, engine: str = "model", repetitions: int = 1,
                     fold: str = "off", engine_jobs: int = 1, faults=None,
                     **options: Any) -> "PointSpec":
        """Spec for one uniform all-to-all point."""
        return cls(cluster=cluster, ppn=ppn, num_nodes=num_nodes, engine=engine,
                   algorithm=algorithm, repetitions=repetitions,
                   options=tuple(sorted(options.items())), msg_bytes=int(msg_bytes),
                   fold=fold, engine_jobs=engine_jobs, faults=faults)

    @classmethod
    def for_workload(cls, cluster: Cluster, ppn: int, num_nodes: int, algorithm: str,
                     matrix, *, engine: str = "model", repetitions: int = 1,
                     fold: str = "off", engine_jobs: int = 1, faults=None,
                     **options: Any) -> "PointSpec":
        """Spec for one non-uniform workload point (the matrix is embedded as a trace)."""
        trace = json.dumps(
            {"pattern": matrix.pattern, "nprocs": matrix.nprocs, "bytes": matrix.bytes.tolist()},
            sort_keys=True, separators=(",", ":"),
        )
        return cls(cluster=cluster, ppn=ppn, num_nodes=num_nodes, engine=engine,
                   algorithm=algorithm, repetitions=repetitions,
                   options=tuple(sorted(options.items())), trace=trace, fold=fold,
                   engine_jobs=engine_jobs, faults=faults)

    @classmethod
    def for_phased(cls, cluster: Cluster, ppn: int, jobs, *, repetitions: int = 1,
                   engine_jobs: int = 1, faults=None) -> "PointSpec":
        """Spec for one phased run (one or more jobs sharing the machine).

        ``jobs`` is a sequence of :class:`repro.core.runner.PhasedJob`
        descriptors.  The whole plan — every job's node count, workload
        content and per-phase algorithm assignment — is embedded as
        canonical JSON in the ``phases`` field, so the cache key is a pure
        function of everything that determines the simulated timeline.
        The engine is always ``"simulate"``.
        """
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("a phased spec needs at least one job")
        payload = {
            "jobs": [
                {
                    "nodes": job.num_nodes,
                    "workload": job.workload.payload(),
                    "algorithms": [
                        [name, [[k, v] for k, v in options]]
                        for name, options in job.algorithms
                    ],
                }
                for job in jobs
            ]
        }
        phases = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        num_nodes = sum(job.num_nodes for job in jobs)
        return cls(cluster=cluster, ppn=ppn, num_nodes=num_nodes,
                   engine="simulate", algorithm="phased",
                   repetitions=repetitions, phases=phases,
                   engine_jobs=engine_jobs, faults=faults)

    # -- execution helpers ---------------------------------------------------
    def phased_jobs(self):
        """Rebuild the :class:`repro.core.runner.PhasedJob` list of a phased spec."""
        if self.phases is None:
            raise ConfigurationError("not a phased spec: no phases attached")
        from repro.core.runner import PhasedJob  # deferred: core is heavier
        from repro.workloads.phased import PhasedWorkload

        decoded = json.loads(self.phases)
        jobs = []
        for entry in decoded["jobs"]:
            jobs.append(
                PhasedJob(
                    workload=PhasedWorkload.from_payload(entry["workload"]),
                    algorithms=tuple(
                        (name, tuple((k, v) for k, v in options))
                        for name, options in entry["algorithms"]
                    ),
                    num_nodes=entry["nodes"],
                )
            )
        return jobs

    def matrix(self):
        """Rebuild the :class:`~repro.workloads.TrafficMatrix` of a workload spec."""
        if self.trace is None:
            raise ConfigurationError("not a workload spec: no trace attached")
        from repro.workloads.traceio import load_trace  # deferred: workloads is heavier

        return load_trace(json.loads(self.trace))

    # -- identity ------------------------------------------------------------
    def payload(self) -> dict:
        """Plain-JSON description of the spec (what the cache stores alongside results).

        ``fold`` is serialized only when it is not ``"off"``: a missing key
        means unfolded, which keeps every pre-folding cache key
        bit-identical (the same pattern the fabric key uses) while making a
        folded run part of a point's identity.  ``faults`` follows the same
        pattern: serialized only when present (empty specs were already
        normalised to ``None``), so pre-faults cache keys keep hitting
        while a faulted point gets its own identity.  ``phases`` follows it
        too: only phased specs carry the key, so every pre-phases cache key
        and golden digest is bit-identical.  ``engine_jobs`` is *never*
        serialized: the parallel engine is bit-identical to serial, so the
        worker count is an execution detail, not part of the result's
        identity — a point simulated at any worker count fills (and hits)
        the same cache entry.
        """
        payload = {
            "version": SPEC_VERSION,
            "cluster": cluster_payload(self.cluster),
            "ppn": self.ppn,
            "num_nodes": self.num_nodes,
            "engine": self.engine,
            "algorithm": self.algorithm,
            "repetitions": self.repetitions,
            "options": [[k, v] for k, v in self.options],
            "msg_bytes": self.msg_bytes,
            "trace": self.trace,
        }
        if self.fold != "off":
            payload["fold"] = self.fold
        if self.faults is not None:
            payload["faults"] = self.faults.payload()
        if self.phases is not None:
            payload["phases"] = self.phases
        return payload

    def canonical(self) -> str:
        """Canonical JSON form; the sole basis of equality, hashing and cache keys.

        Memoized: workload specs embed the whole traffic matrix, and one
        executor batch consults the key several times per spec (store
        lookup, dedupe, fan-out), so serializing once matters.
        """
        cached = self.__dict__.get("_canonical")
        if cached is None:
            try:
                cached = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"point spec is not serializable (non-JSON option value?): {exc}"
                ) from exc
            object.__setattr__(self, "_canonical", cached)
        return cached

    def key(self) -> str:
        """Stable hex digest used as the on-disk cache key."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = sha256(self.canonical().encode("utf-8")).hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        if self.phases is not None:
            jobs = self.phased_jobs()
            phases = sum(job.workload.num_phases for job in jobs)
            what = f"{len(jobs)} job(s), {phases} phase(s)"
        elif self.msg_bytes is not None:
            what = f"{self.msg_bytes} B"
        else:
            what = "trace"
        algo = f"{self.algorithm}({opts})" if opts else self.algorithm
        folded = "" if self.fold == "off" else f", fold={self.fold}"
        faulted = "" if self.faults is None else ", faulted"
        return (
            f"{algo} @ {what} on {self.cluster.name} "
            f"({self.num_nodes} nodes x {self.ppn} ppn, engine={self.engine}{folded}{faulted})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointSpec):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())
