"""Module-level worker function executed by the sweep process pool.

Process pools pickle workers by reference, so :func:`run_point` must live at
module level and depend only on its picklable :class:`PointSpec` argument.
It is safe for every ``multiprocessing`` start method including ``spawn``:
the heavyweight imports happen inside the function, after the child
interpreter has fully initialized the package.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.spec import PointSpec

if TYPE_CHECKING:  # pragma: no cover - runtime must not import bench at module scope
    from repro.bench.datasets import TimedPoint

__all__ = ["run_point"]


def run_point(spec: PointSpec) -> "TimedPoint":
    """Execute one benchmark point and return its timing.

    Builds a fresh :class:`~repro.bench.harness.BenchmarkHarness` from the
    spec (each worker process gets its own simulator state) and runs the
    point through the engine the spec names.
    """
    from repro.bench.harness import BenchmarkHarness  # deferred to break the import cycle

    harness = BenchmarkHarness(
        spec.cluster, spec.ppn, engine=spec.engine, repetitions=spec.repetitions
    )
    return harness.run_spec(spec)
