"""Self-healing process-pool executor for benchmark point sweeps.

A :class:`SweepExecutor` maps :class:`PointSpec` batches to
:class:`TimedPoint` results with four guarantees:

* **deterministic ordering** — results come back in input order whatever
  the worker scheduling (tasks carry their input index and are reassembled
  by it), so parallel sweeps are byte-identical to serial ones;
* **serial fallback** — ``jobs=1`` executes in-process with no pool, no
  pickling and no extra interpreters (the default everywhere, keeping
  library behaviour unchanged unless parallelism is requested);
* **transparent caching** — with a :class:`ResultStore` attached, cached
  points are served from disk and only the misses are executed, each one
  written back *as it lands* (a crash mid-sweep loses at most the points
  still in flight), with duplicate specs inside one batch computed once;
* **self-healing execution** — every task is dispatched individually with
  a per-task wall-clock deadline (:class:`RetryPolicy`); crashed or
  timed-out tasks are retried with exponential backoff, a dead pool is
  respawned (``BrokenPipeError`` / SIGKILLed workers), and tasks that
  exhaust every attempt are quarantined into :class:`FailedPoint` records
  instead of sinking the batch.  The sweep always completes; quarantined
  points are reported in :meth:`SweepExecutor.stats_line` and raised as a
  :class:`SweepFailure` *after* every survivor has been computed (and
  cached).  If the pool cannot be rebuilt at all, execution degrades to
  the serial in-process path.

The pool is created lazily on the first parallel batch and reused until
:meth:`close`, so one executor can serve a whole figure's worth of sweeps
without paying repeated worker start-up costs.  Timeouts are the *only*
mechanism that detects a SIGKILLed worker: ``multiprocessing.Pool``
respawns the process but the in-flight task's ``AsyncResult`` never
completes, so without a :attr:`RetryPolicy.timeout` such a task would hang
the sweep forever (see docs/FAULTS.md).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.runtime.spec import PointSpec
from repro.runtime.store import ResultStore
from repro.runtime.worker import run_point
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - runtime must not import bench at module scope
    from repro.bench.datasets import TimedPoint

__all__ = ["FailedPoint", "RetryPolicy", "SweepExecutor", "SweepFailure", "execute"]

_log = get_logger("runtime.executor")

#: Poll interval of the dispatch loop (seconds).  Short enough that a
#: timed-out task is detected promptly, long enough to stay invisible next
#: to any real simulation work.
_POLL_SECONDS = 0.005


@dataclass(frozen=True)
class RetryPolicy:
    """Retry and timeout policy of the resilient task engine.

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries.  ``timeout`` is the per-task wall-clock deadline in seconds,
    measured from dispatch (``None`` disables deadlines — then a SIGKILLed
    worker's task can hang a sweep, see the module docstring).  Retry
    ``k`` waits ``backoff * backoff_factor**(k-1)`` seconds first.
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff: float = 0.25
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1:
            raise ConfigurationError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay_before(self, attempt: int) -> float:
        """Backoff before ``attempt`` (attempt 2 is the first retry)."""
        if attempt <= 2:
            return self.backoff
        return self.backoff * self.backoff_factor ** (attempt - 2)


@dataclass
class FailedPoint:
    """One task that exhausted every attempt and was quarantined.

    ``index`` is the task's position in the batch handed to
    :meth:`SweepExecutor.run_tasks`; ``task`` is the task value itself
    (a :class:`PointSpec` for :meth:`SweepExecutor.run` batches).
    """

    index: int
    task: object
    attempts: int
    error: str

    def describe(self) -> str:
        what = self.task.describe() if isinstance(self.task, PointSpec) else repr(self.task)
        return f"task {self.index} ({what}): {self.error} after {self.attempts} attempt(s)"


class SweepFailure(ReproError):
    """A sweep finished with quarantined points.

    Raised only *after* the sweep ran to completion: every healthy point
    was computed (and written to the result store when one is attached),
    so a rerun serves the survivors from cache and retries only the
    quarantined points.  ``failures`` holds the :class:`FailedPoint`
    records.
    """

    def __init__(self, failures: Sequence[FailedPoint], total: int) -> None:
        self.failures = list(failures)
        self.total = total
        lines = "; ".join(f.describe() for f in self.failures)
        super().__init__(
            f"{len(self.failures)} of {total} point(s) quarantined after retries: {lines}"
        )


class SweepExecutor:
    """Fan benchmark point specs out over a self-healing process pool."""

    def __init__(self, jobs: int = 1, *, store: ResultStore | None = None,
                 mp_context: str = "spawn", retry: RetryPolicy | None = None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.mp_context = mp_context
        #: Retry/timeout policy for every parallel task (see :class:`RetryPolicy`).
        self.retry = retry if retry is not None else RetryPolicy()
        self._pool = None
        #: Set once the pool could not be (re)built: execution degrades to
        #: the serial in-process path for the rest of the executor's life.
        self._pool_broken = False
        #: Points actually executed (cache misses included), cumulative.
        self.executed_points = 0
        #: Points served from the result store, cumulative.
        self.cached_points = 0
        #: Points quarantined after exhausting every attempt, cumulative.
        self.failed_points = 0
        #: Worker-pool respawns after a dead/broken pool, cumulative.
        self.pool_respawns = 0
        #: Wall-clock seconds spent inside :meth:`run`, cumulative, and the
        #: number of sweeps (batches) served — the harness's own span timing.
        self.wall_seconds = 0.0
        self.sweeps = 0
        #: Optional ``progress(done, total)`` callback, invoked as unique
        #: points of the current sweep resolve (``--progress`` in the CLI).
        self.progress: Callable[[int, int], None] | None = None

    # -- pool lifecycle ------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(processes=self.jobs)
        return self._pool

    def _respawn_pool(self):
        """Tear the (possibly dead) pool down and build a fresh one.

        Returns the new pool, or ``None`` when the rebuild itself fails —
        the executor then degrades to serial execution permanently.
        """
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:  # the pool is already in an arbitrary state
                pass
            self._pool = None
        try:
            pool = self._ensure_pool()
        except Exception as exc:
            _log.warning("could not rebuild the worker pool (%s); degrading to serial execution", exc)
            self._pool_broken = True
            return None
        self.pool_respawns += 1
        _log.info("worker pool respawned (%d so far)", self.pool_respawns)
        return pool

    def close(self, *, force: bool = False) -> None:
        """Shut the worker pool down (idempotent).

        Normal shutdown is graceful — ``Pool.close()`` + ``join()`` lets
        in-flight workers finish (a ``terminate()`` here could kill one
        mid-``ResultStore.put``; the store's atomic writes make that safe
        but the computed point would still be lost).  ``force=True`` is the
        exception path: terminate immediately without draining.
        """
        if self._pool is not None:
            if force:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.close(force=exc_type is not None)

    # -- resilient task engine ------------------------------------------------
    def run_tasks(self, func, tasks: Sequence, *,
                  on_result: Callable[[int, object], None] | None = None,
                  on_failure: Callable[[int, FailedPoint], None] | None = None,
                  ) -> tuple[list, list[FailedPoint]]:
        """Resilient generic fan-out: ``(results, failures)`` in input order.

        ``results[i]`` is ``func(tasks[i])``, or ``None`` when the task was
        quarantined (its :class:`FailedPoint` is in ``failures``).
        ``on_result(index, value)`` / ``on_failure(index, failure)`` fire as
        each task lands, whatever the completion order.

        The serial path (``jobs=1``, single task, or a broken pool) gives
        each task exactly one attempt: in-process execution is
        deterministic, so a failure would only repeat — the retry budget
        exists for the nondeterministic failures of the pool path (crashed
        workers, timeouts, dead pipes).
        """
        tasks = list(tasks)
        results: list = [None] * len(tasks)
        failures: list[FailedPoint] = []
        if not tasks:
            return results, failures
        if self.jobs == 1 or len(tasks) == 1 or self._pool_broken:
            self._run_serial(func, tasks, range(len(tasks)), results, failures,
                             on_result, on_failure)
            return results, failures
        try:
            pool = self._ensure_pool()
        except Exception as exc:
            _log.warning("could not start the worker pool (%s); running serially", exc)
            self._pool_broken = True
            self._run_serial(func, tasks, range(len(tasks)), results, failures,
                             on_result, on_failure)
            return results, failures
        self._run_pool(pool, func, tasks, results, failures, on_result, on_failure)
        return results, failures

    def _run_serial(self, func, tasks, indices, results, failures,
                    on_result, on_failure) -> None:
        for index in indices:
            try:
                value = func(tasks[index])
            except Exception as exc:
                failure = FailedPoint(index=index, task=tasks[index], attempts=1,
                                      error=f"{type(exc).__name__}: {exc}")
                failures.append(failure)
                _log.warning("quarantined %s", failure.describe())
                if on_failure is not None:
                    on_failure(index, failure)
                continue
            results[index] = value
            if on_result is not None:
                on_result(index, value)

    def _run_pool(self, pool, func, tasks, results, failures,
                  on_result, on_failure) -> None:
        retry = self.retry
        timeout = retry.timeout
        ready: deque[tuple[int, int]] = deque((i, 1) for i in range(len(tasks)))
        delayed: list[tuple[float, int, int]] = []  # (ready_at, index, attempt) min-heap
        inflight: dict[int, tuple] = {}  # index -> (AsyncResult, deadline, attempt)

        def settle(index: int, attempt: int, error: str) -> None:
            if attempt >= retry.max_attempts:
                failure = FailedPoint(index=index, task=tasks[index],
                                      attempts=attempt, error=error)
                failures.append(failure)
                _log.warning("quarantined %s", failure.describe())
                if on_failure is not None:
                    on_failure(index, failure)
            else:
                delay = retry.delay_before(attempt + 1)
                _log.info("task %d attempt %d failed (%s); retrying in %.2fs",
                          index, attempt, error, delay)
                heappush(delayed, (time.monotonic() + delay, index, attempt + 1))

        while ready or delayed or inflight:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heappop(delayed)
                ready.append((index, attempt))

            # Dispatch at most one in-flight task per worker so each
            # deadline clocks actual execution, not time queued inside the
            # pool (Pool-internal queuing would expire deadlines spuriously).
            while ready and len(inflight) < self.jobs:
                index, attempt = ready.popleft()
                try:
                    handle = pool.apply_async(func, (tasks[index],))
                except Exception as exc:
                    # The pool itself is gone (result handler dead, pipes
                    # closed).  Everything in flight belongs to the dead
                    # pool and will never complete: fold it back in and
                    # respawn; if that fails, drain serially.
                    _log.warning("worker pool died at dispatch (%s: %s)",
                                 type(exc).__name__, exc)
                    ready.appendleft((index, attempt))
                    for lost, (_, _, lost_attempt) in inflight.items():
                        ready.append((lost, lost_attempt))
                    inflight.clear()
                    pool = self._respawn_pool()
                    if pool is None:
                        pending = sorted({i for i, _ in ready}
                                         | {i for _, i, _ in delayed})
                        self._run_serial(func, tasks, pending, results, failures,
                                         on_result, on_failure)
                        return
                    break
                deadline = None if timeout is None else time.monotonic() + timeout
                inflight[index] = (handle, deadline, attempt)

            if not inflight:
                if delayed:
                    time.sleep(min(0.05, max(0.0, delayed[0][0] - time.monotonic())))
                continue

            now = time.monotonic()
            landed = [
                index for index, (handle, deadline, _) in inflight.items()
                if handle.ready() or (deadline is not None and now > deadline)
            ]
            if not landed:
                time.sleep(_POLL_SECONDS)
                continue
            for index in landed:
                handle, deadline, attempt = inflight.pop(index)
                if not handle.ready():
                    # Deadline expired with no result: the worker was killed
                    # mid-task (the pool respawns the process but the task's
                    # AsyncResult never completes) or the point genuinely
                    # hangs.  Either way, charge the attempt and retry.
                    settle(index, attempt, f"timed out after {timeout:g}s")
                    continue
                try:
                    value = handle.get()
                except Exception as exc:
                    settle(index, attempt, f"{type(exc).__name__}: {exc}")
                    continue
                results[index] = value
                if on_result is not None:
                    on_result(index, value)

    # -- execution -----------------------------------------------------------
    def run(self, specs: Iterable[PointSpec]) -> list[TimedPoint]:
        """Execute a batch of specs; results are returned in input order.

        Raises :class:`SweepFailure` when any unique point was quarantined
        — but only after the whole sweep completed, with every healthy
        result already written to the attached store.
        """
        started = time.perf_counter()
        batch = list(specs)

        # Identical specs inside one batch (e.g. the same point feeding two
        # phase series) resolve to one unique entry: one store lookup, one
        # execution, fanned back out to every duplicate.
        unique_index: dict[str, int] = {}
        unique_specs: list[PointSpec] = []
        for spec in batch:
            if spec.key() not in unique_index:
                unique_index[spec.key()] = len(unique_specs)
                unique_specs.append(spec)

        # Both counters are in units of *unique* points, so per batch
        # "simulated + served from cache" always reconciles to the number of
        # distinct points, however many duplicates fanned out of them.
        resolved: list[TimedPoint | None] = [None] * len(unique_specs)
        to_compute: list[int] = []
        progress = self.progress
        total = len(unique_specs)
        for uidx, spec in enumerate(unique_specs):
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                resolved[uidx] = cached
                self.cached_points += 1
            else:
                to_compute.append(uidx)
        done = total - len(to_compute)
        if progress is not None and done:
            progress(done, total)

        store = self.store
        landed = {"done": done}

        def on_result(position: int, point) -> None:
            uidx = to_compute[position]
            resolved[uidx] = point
            if store is not None:
                # Persisted as it lands: a crash later in the sweep loses
                # only the points still in flight, never finished work.
                store.put(unique_specs[uidx], point)
            landed["done"] += 1
            if progress is not None:
                progress(landed["done"], total)

        def on_failure(position: int, failure: FailedPoint) -> None:
            landed["done"] += 1
            if progress is not None:
                progress(landed["done"], total)

        _, task_failures = self.run_tasks(
            run_point, [unique_specs[uidx] for uidx in to_compute],
            on_result=on_result, on_failure=on_failure,
        )
        self.executed_points += len(to_compute) - len(task_failures)
        self.failed_points += len(task_failures)

        self.wall_seconds += time.perf_counter() - started
        self.sweeps += 1
        # One deterministic summary line per sweep: counts only, no wall
        # clock, so identical sweeps over identical cache state log
        # identically whatever the machine or the jobs setting.
        if task_failures:
            _log.info(
                "sweep of %d point(s): %d unique, %d simulated, %d from cache, %d quarantined",
                len(batch), total, len(to_compute) - len(task_failures), done,
                len(task_failures),
            )
        else:
            _log.info(
                "sweep of %d point(s): %d unique, %d simulated, %d from cache",
                len(batch), total, len(to_compute), done,
            )
        if task_failures:
            raise SweepFailure(
                [FailedPoint(index=to_compute[f.index],
                             task=unique_specs[to_compute[f.index]],
                             attempts=f.attempts, error=f.error)
                 for f in task_failures],
                total,
            )
        return [resolved[unique_index[spec.key()]] for spec in batch]  # type: ignore[misc]

    def map(self, func, items: Iterable) -> list:
        """Fan an arbitrary task list out over the worker pool.

        The generic sibling of :meth:`run` for work that is not a
        :class:`PointSpec` batch (e.g. the conformance scenarios of
        :mod:`repro.verify`).  ``func`` must be picklable by reference — a
        module-level function — and ``items`` picklable values; results
        come back in input order.  Runs on the same resilient engine as
        :meth:`run` (per-task dispatch, retries, pool respawn); tasks that
        exhaust every attempt raise a :class:`SweepFailure` after the rest
        completed.  No store interaction: caching is keyed on spec hashes,
        which arbitrary tasks do not have.
        """
        tasks = list(items)
        if not tasks:
            return []
        results, failures = self.run_tasks(func, tasks)
        if failures:
            raise SweepFailure(failures, len(tasks))
        return results

    # -- reporting -----------------------------------------------------------
    def stats_line(self) -> str:
        """One-line execution summary (printed by the CLI when caching is on).

        The leading ``jobs=N: ... simulated, ... served from cache`` portion
        is stable (CI greps it); the quarantine count appears only when
        non-zero, and the wall-clock suffix is informational.
        """
        line = (
            f"[runtime] jobs={self.jobs}: {self.executed_points} point(s) simulated, "
            f"{self.cached_points} served from cache"
        )
        if self.failed_points:
            line += f", {self.failed_points} quarantined"
        if self.sweeps:
            line += f" ({self.sweeps} sweep(s), {self.wall_seconds:.2f}s wall)"
        if self.pool_respawns:
            line += f" [{self.pool_respawns} pool respawn(s)]"
        if self.store is not None and self.store.corrupt:
            line += f" [{self.store.corrupt} corrupt entr(ies) recomputed]"
        return line


def execute(specs: Iterable[PointSpec], executor: SweepExecutor | None = None) -> list[TimedPoint]:
    """Run specs through ``executor``, or inline (serial, uncached) when it is None."""
    if executor is None:
        return [run_point(spec) for spec in specs]
    return executor.run(specs)


def default_jobs() -> int:
    """A sensible ``--jobs`` default for 'use the whole machine' requests.

    Prefers the scheduling affinity mask (which honours cgroup / cpuset
    limits in containers) over the raw core count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)
