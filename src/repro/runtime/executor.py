"""Process-pool executor for benchmark point sweeps.

A :class:`SweepExecutor` maps :class:`PointSpec` batches to
:class:`TimedPoint` results with three guarantees:

* **deterministic ordering** — results come back in input order whatever
  the worker scheduling (``Pool.map`` semantics; the serial path trivially
  preserves order), so parallel sweeps are byte-identical to serial ones;
* **serial fallback** — ``jobs=1`` executes in-process with no pool, no
  pickling and no extra interpreters (the default everywhere, keeping
  library behaviour unchanged unless parallelism is requested);
* **transparent caching** — with a :class:`ResultStore` attached, cached
  points are served from disk and only the misses are executed (then
  written back), with duplicate specs inside one batch computed once.

The pool is created lazily on the first parallel batch and reused until
:meth:`close`, so one executor can serve a whole figure's worth of sweeps
without paying repeated worker start-up costs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.runtime.spec import PointSpec
from repro.runtime.store import ResultStore
from repro.runtime.worker import run_point
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - runtime must not import bench at module scope
    from repro.bench.datasets import TimedPoint

__all__ = ["SweepExecutor", "execute"]

_log = get_logger("runtime.executor")


class SweepExecutor:
    """Fan benchmark point specs out over a process pool, with optional caching."""

    def __init__(self, jobs: int = 1, *, store: ResultStore | None = None,
                 mp_context: str = "spawn") -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.mp_context = mp_context
        self._pool = None
        #: Points actually executed (cache misses included), cumulative.
        self.executed_points = 0
        #: Points served from the result store, cumulative.
        self.cached_points = 0
        #: Wall-clock seconds spent inside :meth:`run`, cumulative, and the
        #: number of sweeps (batches) served — the harness's own span timing.
        self.wall_seconds = 0.0
        self.sweeps = 0
        #: Optional ``progress(done, total)`` callback, invoked as unique
        #: points of the current sweep resolve (``--progress`` in the CLI).
        self.progress: Callable[[int, int], None] | None = None

    # -- pool lifecycle ------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(processes=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------------
    def run(self, specs: Iterable[PointSpec]) -> list[TimedPoint]:
        """Execute a batch of specs; results are returned in input order."""
        started = time.perf_counter()
        batch = list(specs)

        # Identical specs inside one batch (e.g. the same point feeding two
        # phase series) resolve to one unique entry: one store lookup, one
        # execution, fanned back out to every duplicate.
        unique_index: dict[str, int] = {}
        unique_specs: list[PointSpec] = []
        for spec in batch:
            if spec.key() not in unique_index:
                unique_index[spec.key()] = len(unique_specs)
                unique_specs.append(spec)

        # Both counters are in units of *unique* points, so per batch
        # "simulated + served from cache" always reconciles to the number of
        # distinct points, however many duplicates fanned out of them.
        resolved: list[TimedPoint | None] = [None] * len(unique_specs)
        to_compute: list[int] = []
        progress = self.progress
        total = len(unique_specs)
        for uidx, spec in enumerate(unique_specs):
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                resolved[uidx] = cached
                self.cached_points += 1
            else:
                to_compute.append(uidx)
        done = total - len(to_compute)
        if progress is not None and done:
            progress(done, total)

        computed = self._compute(
            [unique_specs[uidx] for uidx in to_compute],
            progress=progress, done=done, total=total,
        )
        self.executed_points += len(to_compute)
        for uidx, point in zip(to_compute, computed):
            resolved[uidx] = point
            if self.store is not None:
                self.store.put(unique_specs[uidx], point)

        self.wall_seconds += time.perf_counter() - started
        self.sweeps += 1
        # One deterministic summary line per sweep: counts only, no wall
        # clock, so identical sweeps over identical cache state log
        # identically whatever the machine or the jobs setting.
        _log.info(
            "sweep of %d point(s): %d unique, %d simulated, %d from cache",
            len(batch), total, len(to_compute), done,
        )
        return [resolved[unique_index[spec.key()]] for spec in batch]  # type: ignore[misc]

    def map(self, func, items: Iterable) -> list:
        """Fan an arbitrary task list out over the worker pool.

        The generic sibling of :meth:`run` for work that is not a
        :class:`PointSpec` batch (e.g. the conformance scenarios of
        :mod:`repro.verify`).  ``func`` must be picklable by reference — a
        module-level function — and ``items`` picklable values; results come
        back in input order (``Pool.map`` semantics).  No store interaction:
        caching is keyed on spec hashes, which arbitrary tasks do not have.
        """
        tasks = list(items)
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            return [func(task) for task in tasks]
        pool = self._ensure_pool()
        chunksize = max(1, len(tasks) // (4 * self.jobs))
        return pool.map(func, tasks, chunksize)

    def _compute(self, specs: Sequence[PointSpec], *, progress=None,
                 done: int = 0, total: int = 0) -> list[TimedPoint]:
        if progress is None or not specs:
            return self.map(run_point, specs)
        if self.jobs == 1 or len(specs) == 1:
            # Serial path: report after every point.
            out = []
            for spec in specs:
                out.append(run_point(spec))
                done += 1
                progress(done, total)
            return out
        # Parallel path: Pool.map is all-or-nothing, so report once when the
        # whole batch lands (ordering and results stay byte-identical).
        out = self.map(run_point, specs)
        progress(done + len(specs), total)
        return out

    # -- reporting -----------------------------------------------------------
    def stats_line(self) -> str:
        """One-line execution summary (printed by the CLI when caching is on).

        The leading ``jobs=N: ... simulated, ... served from cache`` portion
        is stable (CI greps it); the wall-clock suffix is informational.
        """
        line = (
            f"[runtime] jobs={self.jobs}: {self.executed_points} point(s) simulated, "
            f"{self.cached_points} served from cache"
        )
        if self.sweeps:
            line += f" ({self.sweeps} sweep(s), {self.wall_seconds:.2f}s wall)"
        if self.store is not None and self.store.corrupt:
            line += f" [{self.store.corrupt} corrupt entr(ies) recomputed]"
        return line


def execute(specs: Iterable[PointSpec], executor: SweepExecutor | None = None) -> list[TimedPoint]:
    """Run specs through ``executor``, or inline (serial, uncached) when it is None."""
    if executor is None:
        return [run_point(spec) for spec in specs]
    return executor.run(specs)


def default_jobs() -> int:
    """A sensible ``--jobs`` default for 'use the whole machine' requests.

    Prefers the scheduling affinity mask (which honours cgroup / cpuset
    limits in containers) over the raw core count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)
