"""Parallel sweep runtime: picklable point specs, a process-pool executor
and an on-disk result store.

Every figure, ablation sweep and selection table of the reproduction is a
collection of *independent* benchmark points, so regenerating them is
embarrassingly parallel.  This package provides the plumbing:

* :class:`~repro.runtime.spec.PointSpec` — one benchmark point (cluster,
  placement, engine, algorithm, options, message size or workload trace) as
  a picklable, hashable value;
* :func:`~repro.runtime.worker.run_point` — module-level worker function
  mapping a spec to a :class:`~repro.bench.datasets.TimedPoint`, safe for
  ``multiprocessing`` spawn;
* :class:`~repro.runtime.executor.SweepExecutor` — fans specs out over a
  *self-healing* process pool (``jobs=1`` falls back to in-process
  execution) with deterministic, input-ordered results: per-task dispatch,
  per-point timeouts and retries (:class:`~repro.runtime.executor.RetryPolicy`),
  pool respawn on dead workers, and quarantine of points that fail every
  attempt (:class:`~repro.runtime.executor.FailedPoint`, reported via
  :class:`~repro.runtime.executor.SweepFailure` once the survivors landed);
* :class:`~repro.runtime.store.ResultStore` — JSON cache keyed by the
  stable spec hash, so repeated sweeps skip already-simulated points.
"""

from repro.runtime.executor import (
    FailedPoint,
    RetryPolicy,
    SweepExecutor,
    SweepFailure,
    execute,
)
from repro.runtime.spec import PointSpec, cluster_from_payload, cluster_payload
from repro.runtime.store import ResultStore
from repro.runtime.worker import run_point

__all__ = [
    "FailedPoint",
    "PointSpec",
    "ResultStore",
    "RetryPolicy",
    "SweepExecutor",
    "SweepFailure",
    "cluster_from_payload",
    "cluster_payload",
    "execute",
    "run_point",
]
