"""On-disk JSON result store keyed by stable point-spec hashes.

Layout: ``<cache_dir>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256
of the spec's canonical JSON form.  Each entry stores the full spec payload
next to the result, so cache directories are self-describing and
``BENCH_*.json`` style trajectories can be assembled from them without
re-simulating.

The store is defensive: a missing, truncated or otherwise corrupted entry
reads as a miss (the point is recomputed and rewritten), never as an error.
Writes are atomic (temp file + ``os.replace``) so concurrent sweeps sharing
a cache directory cannot observe half-written entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.runtime.spec import PointSpec

if TYPE_CHECKING:  # pragma: no cover - runtime must not import bench at module scope
    from repro.bench.datasets import TimedPoint

__all__ = ["ResultStore"]


class ResultStore:
    """JSON cache of :class:`TimedPoint` results keyed by spec hash."""

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Lookup accounting, cumulative over the store's lifetime: ``hits``
        #: served a valid entry, ``misses`` found no entry at all, and
        #: ``corrupt`` found an entry that failed to parse (which the
        #: defensive contract turns into a recompute, not an error).
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, spec: PointSpec) -> Path:
        key = spec.key()
        return self.cache_dir / key[:2] / f"{key}.json"

    # -- read ----------------------------------------------------------------
    def get(self, spec: PointSpec) -> "TimedPoint | None":
        """Cached result for ``spec``, or ``None`` on a miss or a corrupt entry.

        A corrupt entry is unlinked at detection (best effort), not just
        counted: leaving it on disk would make every later lookup of the
        same point — including ``__contains__`` probes and sweeps that
        crash between the detection and the recompute's ``put`` — pay the
        parse-and-fail cost again, and would keep ``__len__`` counting a
        file that can never be served.
        """
        from repro.bench.datasets import TimedPoint  # deferred to break the import cycle

        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            result = entry["result"]
            seconds = float(result["seconds"])
            phases = {str(name): float(value) for name, value in result["phases"].items()}
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError, AttributeError):
            self.corrupt += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return TimedPoint(seconds=seconds, phases=phases)

    # -- write ---------------------------------------------------------------
    def put(self, spec: PointSpec, point: "TimedPoint") -> None:
        """Persist one result atomically."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": spec.key(),
            "spec": spec.payload(),
            "result": {"seconds": point.seconds, "phases": dict(point.phases)},
        }
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(entry, handle)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Cumulative lookup counters (every ``get``, including probes)."""
        return {"hits": self.hits, "misses": self.misses, "corrupt": self.corrupt}

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("??/*.json"))

    def __contains__(self, spec: PointSpec) -> bool:
        return self.get(spec) is not None
