"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from simulation
protocol violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "CommunicatorError",
    "MatchingError",
    "SimulationError",
    "AlgorithmError",
    "BufferSizeError",
    "DeadlockError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class TopologyError(ConfigurationError):
    """A machine topology was specified inconsistently.

    Raised for example when the number of cores per node is not divisible
    by the number of NUMA domains, or when a rank is mapped outside the
    cluster.
    """


class CommunicatorError(ReproError):
    """Misuse of a simulated communicator (bad rank, empty group, ...)."""


class MatchingError(ReproError):
    """The message-matching engine detected a protocol violation."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All simulated processes are blocked and no events remain.

    This is the simulator's equivalent of an MPI job hanging: every rank is
    waiting on a message that will never arrive.  The error message lists
    the blocked ranks and what they are waiting for to ease debugging of
    new algorithms.
    """


class AlgorithmError(ReproError):
    """An all-to-all algorithm was invoked with unsupported parameters."""


class BufferSizeError(AlgorithmError):
    """A send or receive buffer does not have the size required by the
    collective operation being performed."""
